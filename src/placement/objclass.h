// DAOS object classes: how an object is sharded and protected.
//
// Mirrors the classes the paper uses: S1/S2/S4/S8/SX (sharding over 1..all
// targets, no protection), RP_2G1/RP_2GX (2-way replication), and
// EC_2P1G1/EC_2P1GX (2 data + 1 parity erasure coding). G1 = one redundancy
// group; GX = as many groups as targets allow.
#pragma once

#include <cstdint>
#include <string_view>

namespace daosim::placement {

enum class ObjClass : std::uint16_t {
  S1 = 1,   // single shard, no redundancy
  S2,       // 2 shards
  S4,       // 4 shards
  S8,       // 8 shards
  SX,       // shard across all targets
  RP_2G1,   // 2 replicas, 1 group
  RP_2GX,   // 2 replicas, max groups
  RP_3G1,   // 3 replicas, 1 group
  EC_2P1G1,  // 2 data + 1 parity, 1 group
  EC_2P1GX,  // 2 data + 1 parity, max groups
  EC_4P2GX,  // 4 data + 2 parity, max groups
};

/// Static description of a class.
struct ClassSpec {
  /// Redundancy-group count; -1 means "as many as targets allow" (the X
  /// classes).
  int groups = 1;
  /// Replica count within a group (1 = none). Mutually exclusive with EC.
  int replicas = 1;
  /// Erasure coding data/parity cell counts (0 = not erasure coded).
  int ec_data = 0;
  int ec_parity = 0;

  bool erasureCoded() const noexcept { return ec_data > 0; }
  bool replicated() const noexcept { return replicas > 1; }
  /// Targets per redundancy group.
  int groupSize() const noexcept {
    return erasureCoded() ? ec_data + ec_parity : replicas;
  }
  /// Bytes written to storage per byte of user data.
  double writeAmplification() const noexcept {
    if (erasureCoded()) {
      return static_cast<double>(ec_data + ec_parity) /
             static_cast<double>(ec_data);
    }
    return static_cast<double>(replicas);
  }
};

ClassSpec classSpec(ObjClass oc) noexcept;
std::string_view className(ObjClass oc) noexcept;

/// Inverse of className; throws std::invalid_argument on unknown names.
ObjClass classFromName(std::string_view name);

}  // namespace daosim::placement
