#include "lustre/lustre.h"

#include <algorithm>
#include <stdexcept>

#include <cstring>

#include "dfs/dfs.h"
#include "placement/oid.h"
#include "sim/sync.h"

namespace daosim::lustre {

namespace {

/// OST object extents are stored under a fixed container/akey; the fid is
/// the object id.
constexpr vos::ContId kLustreCont = 1;

placement::ObjectId fidOid(std::uint64_t fid) {
  return placement::makeOid(placement::ObjClass::S1, fid, 0xffffff01u);
}

std::string parentOf(const std::string& path) {
  auto pos = path.find_last_of('/');
  if (pos == std::string::npos || pos == 0) return "/";
  return path.substr(0, pos);
}

std::string normalize(const std::string& path) {
  std::string out = "/";
  for (const auto& part : dfs::splitPath(path)) out += part + "/";
  if (out.size() > 1) out.pop_back();
  return out;
}

}  // namespace

LustreSystem::LustreSystem(hw::Cluster& cluster,
                           std::vector<hw::NodeId> oss_nodes,
                           hw::NodeId mds_node, LustreConfig config)
    : cluster_(&cluster),
      config_(config),
      mds_node_(mds_node),
      mds_threads_(cluster.sim(), "mds", config.mds_threads),
      mds_device_(&cluster.node(mds_node).drive(0)) {
  mds_threads_.setTracePid(mds_node);
  for (hw::NodeId node : oss_nodes) {
    hw::Node& n = cluster.node(node);
    if (static_cast<int>(n.driveCount()) < config.osts_per_oss) {
      throw std::invalid_argument("LustreSystem: OSS node lacks NVMe drives");
    }
    for (int i = 0; i < config.osts_per_oss; ++i) {
      osts_.push_back(std::make_unique<Ost>(
          cluster.sim(), node, n.drive(static_cast<std::size_t>(i)),
          "ost" + std::to_string(osts_.size()), config.retain_data));
      osts_.back()->cpu.setTracePid(node);
    }
  }
  namespace_["/"] = Inode{.fid = 0, .is_directory = true, .size = 0, .layout = {}};
}

sim::Task<void> LustreSystem::mdsOp(bool mutation, obs::OpId op) {
  co_await mds_threads_.exec(config_.mds_service, op);
  if (mutation) {
    journal_pending_ += config_.mds_journal_bytes;
    if (journal_pending_ >= config_.mds_journal_batch) {
      const std::uint64_t batch = journal_pending_;
      journal_pending_ = 0;
      co_await mds_device_->write(batch, op);  // group commit
    }
  }
}

Inode* LustreSystem::find(const std::string& path) {
  auto it = namespace_.find(normalize(path));
  return it == namespace_.end() ? nullptr : &it->second;
}

Inode& LustreSystem::createInode(const std::string& path, bool dir,
                                 int stripe_count,
                                 std::uint64_t stripe_size) {
  Inode inode;
  inode.fid = next_fid_++;
  inode.is_directory = dir;
  if (!dir) {
    stripe_count = std::min(stripe_count, ostCount());
    inode.layout.stripe_count = stripe_count;
    inode.layout.stripe_size = stripe_size;
    // Lustre starts each file's stripe order at a pseudo-random index so
    // processes writing in lockstep do not converge on the same OST.
    const int start = static_cast<int>(sim::mix64(inode.fid) %
                                       static_cast<std::uint64_t>(stripe_count));
    for (int i = 0; i < stripe_count; ++i) {
      inode.layout.osts.push_back(
          (alloc_cursor_ + (start + i) % stripe_count) % ostCount());
    }
    alloc_cursor_ = (alloc_cursor_ + stripe_count) % ostCount();
  }
  auto [it, _] = namespace_.insert_or_assign(normalize(path), inode);
  return it->second;
}

void LustreSystem::removeInode(const std::string& path) {
  namespace_.erase(normalize(path));
}

std::uint64_t LustreSystem::bytesStored() const {
  std::uint64_t total = 0;
  for (const auto& ost : osts_) total += ost->store.bytesStored();
  return total;
}

// --- LustreVfs -------------------------------------------------------------

sim::Task<void> LustreVfs::mdsCall(bool mutation, obs::OpId op) {
  co_await net::request(system_->cluster(), node_, system_->mdsNode(),
                        0, op);
  co_await system_->mdsOp(mutation, op);
  co_await net::respond(system_->cluster(), system_->mdsNode(), node_, 128,
                        op);
}

sim::Task<posix::Fd> LustreVfs::open(std::string path,
                                     posix::OpenFlags flags) {
  // Open intent: one MDS round trip resolving and (maybe) creating.
  auto span = obs::beginOp(system_->cluster().sim(), "lustre.open", node_,
                           "lustre");
  Inode* inode = system_->find(path);
  const bool creating = inode == nullptr && flags.create;
  co_await mdsCall(/*mutation=*/creating, span.id());
  if (inode == nullptr) {
    if (!flags.create) {
      throw std::runtime_error("lustre open: no such file: " + path);
    }
    Inode* parent = system_->find(parentOf(path));
    if (parent == nullptr || !parent->is_directory) {
      throw std::runtime_error("lustre open: no parent directory: " + path);
    }
    const int sc = stripe_count_ > 0 ? stripe_count_
                                     : system_->config().default_stripe_count;
    const std::uint64_t ss = stripe_size_ > 0
                                 ? stripe_size_
                                 : system_->config().default_stripe_size;
    inode = &system_->createInode(path, /*dir=*/false, sc, ss);
  } else {
    if (inode->is_directory) {
      throw std::runtime_error("lustre open: is a directory: " + path);
    }
    if (flags.create && flags.exclusive) {
      throw std::runtime_error("lustre open: exists (O_EXCL): " + path);
    }
    if (flags.truncate && inode->size > 0) {
      for (int ost : inode->layout.osts) {
        system_->ost(ost).store.punchObject(kLustreCont, fidOid(inode->fid));
      }
      inode->size = 0;
    }
  }
  const posix::Fd fd = allocFd(flags.append);
  if (flags.append) cursor(fd).offset = inode->size;
  files_[fd] = inode;
  co_return fd;
}

sim::Task<void> LustreVfs::close(posix::Fd fd) {
  // Lustre close is an MDS RPC (it releases the open handle and commits
  // size/attributes).
  co_await mdsCall(/*mutation=*/false);
  files_.erase(fd);
  releaseFd(fd);
}

sim::Task<void> LustreVfs::writeStripe(std::uint64_t fid, int ost_global,
                                       std::uint64_t offset,
                                       vos::Payload piece, obs::OpId op) {
  LustreSystem::Ost& ost = system_->ost(ost_global);
  co_await net::request(system_->cluster(), node_, ost.node,
                        piece.size(), op);
  co_await ost.cpu.exec(system_->config().ost_service_cpu, op);
  co_await ost.device->write(piece.size(), op);
  ost.store.extentWrite(kLustreCont, fidOid(fid), "", "0", offset,
                        std::move(piece));
  co_await net::respond(system_->cluster(), ost.node, node_, 0, op);
}

sim::Task<vos::Payload> LustreVfs::readStripe(std::uint64_t fid,
                                              int ost_global,
                                              std::uint64_t offset,
                                              std::uint64_t length,
                                              obs::OpId op) {
  LustreSystem::Ost& ost = system_->ost(ost_global);
  co_await net::request(system_->cluster(), node_, ost.node,
                        0, op);
  co_await ost.cpu.exec(system_->config().ost_service_cpu, op);
  auto r = ost.store.extentRead(kLustreCont, fidOid(fid), "", "0", offset,
                                length);
  if (r.bytes_found > 0) co_await ost.device->read(r.bytes_found, op);
  co_await net::respond(system_->cluster(), ost.node, node_, length, op);
  co_return std::move(r.data);
}

sim::Task<std::uint64_t> LustreVfs::pwrite(posix::Fd fd, std::uint64_t offset,
                                           vos::Payload data) {
  auto span = obs::beginOp(system_->cluster().sim(), "lustre.pwrite", node_,
                           "lustre");
  Inode* inode = files_.at(fd);
  const auto& layout = inode->layout;
  std::vector<sim::Task<void>> ops;
  std::uint64_t pos = 0;
  while (pos < data.size()) {
    const std::uint64_t abs = offset + pos;
    const std::uint64_t stripe_no = abs / layout.stripe_size;
    const std::uint64_t in_stripe = abs % layout.stripe_size;
    const std::uint64_t len =
        std::min(data.size() - pos, layout.stripe_size - in_stripe);
    const int ost = layout.osts[static_cast<std::size_t>(
        stripe_no % static_cast<std::uint64_t>(layout.stripe_count))];
    ops.push_back(
        writeStripe(inode->fid, ost, abs, data.slice(pos, len), span.id()));
    pos += len;
  }
  if (ops.size() == 1) {
    co_await std::move(ops.front());
  } else if (!ops.empty()) {
    co_await sim::whenAll(system_->cluster().sim(), std::move(ops));
  }
  inode->size = std::max(inode->size, offset + data.size());
  co_return data.size();
}

sim::Task<vos::Payload> LustreVfs::pread(posix::Fd fd, std::uint64_t offset,
                                         std::uint64_t length) {
  auto span = obs::beginOp(system_->cluster().sim(), "lustre.pread", node_,
                           "lustre");
  Inode* inode = files_.at(fd);
  const auto& layout = inode->layout;
  struct Piece {
    std::uint64_t rel;
    vos::Payload data;
  };
  struct Sub {
    int ost;
    std::uint64_t abs, len, rel;
  };
  std::vector<Sub> subs;
  std::uint64_t pos = 0;
  while (pos < length) {
    const std::uint64_t abs = offset + pos;
    const std::uint64_t stripe_no = abs / layout.stripe_size;
    const std::uint64_t in_stripe = abs % layout.stripe_size;
    const std::uint64_t len =
        std::min(length - pos, layout.stripe_size - in_stripe);
    const int ost = layout.osts[static_cast<std::size_t>(
        stripe_no % static_cast<std::uint64_t>(layout.stripe_count))];
    subs.push_back({ost, abs, len, pos});
    pos += len;
  }
  if (subs.size() == 1) {
    co_return co_await readStripe(inode->fid, subs[0].ost, subs[0].abs,
                                  subs[0].len, span.id());
  }
  std::vector<Piece> pieces(subs.size());
  std::vector<sim::Task<void>> ops;
  for (std::size_t i = 0; i < subs.size(); ++i) {
    ops.push_back(
        [](LustreVfs* self, std::uint64_t fid, Sub sub, Piece* out,
           obs::OpId op) -> sim::Task<void> {
          out->rel = sub.rel;
          out->data =
              co_await self->readStripe(fid, sub.ost, sub.abs, sub.len, op);
        }(this, inode->fid, subs[i], &pieces[i], span.id()));
  }
  co_await sim::whenAll(system_->cluster().sim(), std::move(ops));

  bool all_real = true;
  for (const auto& p : pieces) {
    if (!p.data.hasBytes()) all_real = false;
  }
  if (!all_real) co_return vos::Payload::synthetic(length);
  std::vector<std::byte> out(length);
  for (const auto& p : pieces) {
    auto b = p.data.bytes();
    std::memcpy(out.data() + p.rel, b.data(), b.size());
  }
  co_return vos::Payload::fromBytes(std::move(out));
}

sim::Task<posix::FileStat> LustreVfs::stat(std::string path) {
  auto span = obs::beginOp(system_->cluster().sim(), "lustre.stat", node_,
                           "lustre");
  co_await mdsCall(/*mutation=*/false, span.id());
  Inode* inode = system_->find(path);
  if (inode == nullptr) throw std::runtime_error("lustre stat: no such path");
  co_return posix::FileStat{.is_directory = inode->is_directory,
                            .size = inode->size};
}

sim::Task<posix::FileStat> LustreVfs::fstat(posix::Fd fd) {
  co_await mdsCall(/*mutation=*/false);
  Inode* inode = files_.at(fd);
  co_return posix::FileStat{.is_directory = false, .size = inode->size};
}

sim::Task<void> LustreVfs::fsync(posix::Fd fd) {
  // Commit on every OST the file spans (parallel, cheap).
  Inode* inode = files_.at(fd);
  std::vector<sim::Task<void>> ops;
  for (int ost : inode->layout.osts) {
    ops.push_back([](LustreVfs* self, int ost) -> sim::Task<void> {
      LustreSystem::Ost& o = self->system_->ost(ost);
      co_await net::request(self->system_->cluster(), self->node_, o.node,
                            0);
      co_await o.cpu.exec(self->system_->config().ost_service_cpu);
      co_await net::respond(self->system_->cluster(), o.node, self->node_, 0);
    }(this, ost));
  }
  if (!ops.empty()) {
    co_await sim::whenAll(system_->cluster().sim(), std::move(ops));
  }
}

sim::Task<void> LustreVfs::mkdir(std::string path) {
  co_await mdsCall(/*mutation=*/true);
  if (system_->find(path) != nullptr) {
    throw std::runtime_error("lustre mkdir: exists: " + path);
  }
  Inode* parent = system_->find(parentOf(path));
  if (parent == nullptr || !parent->is_directory) {
    throw std::runtime_error("lustre mkdir: no parent: " + path);
  }
  system_->createInode(path, /*dir=*/true, 0, 0);
}

sim::Task<void> LustreVfs::mkdirs(std::string path) {
  std::string prefix;
  for (const auto& part : dfs::splitPath(path)) {
    prefix += "/" + part;
    if (system_->find(prefix) == nullptr) co_await mkdir(prefix);
  }
}

sim::Task<void> LustreVfs::unlink(std::string path) {
  co_await mdsCall(/*mutation=*/true);
  Inode* inode = system_->find(path);
  if (inode == nullptr) throw std::runtime_error("lustre unlink: no such path");
  for (int ost : inode->layout.osts) {
    system_->ost(ost).store.punchObject(kLustreCont, fidOid(inode->fid));
  }
  system_->removeInode(path);
}

sim::Task<std::vector<std::string>> LustreVfs::readdir(std::string path) {
  co_await mdsCall(/*mutation=*/false);
  std::string prefix = normalize(path);
  if (prefix.back() != '/') prefix += '/';
  std::vector<std::string> names;
  for (const auto& [p, _] : system_->namespaceMap()) {
    if (p.size() > prefix.size() && p.compare(0, prefix.size(), prefix) == 0 &&
        p.find('/', prefix.size()) == std::string::npos) {
      names.push_back(p.substr(prefix.size()));
    }
  }
  co_return names;
}

sim::Task<void> LustreVfs::rename(std::string from, std::string to) {
  co_await mdsCall(/*mutation=*/true);
  Inode* inode = system_->find(from);
  if (inode == nullptr) throw std::runtime_error("lustre rename: no path");
  Inode moved = *inode;
  system_->removeInode(from);
  system_->namespaceMap()[normalize(to)] = moved;
}

sim::Task<void> LustreVfs::truncate(std::string path, std::uint64_t size) {
  co_await mdsCall(/*mutation=*/true);
  Inode* inode = system_->find(path);
  if (inode == nullptr) throw std::runtime_error("lustre truncate: no path");
  // Trim OST objects (state-only; the MDS RPC carries the cost).
  for (int ost : inode->layout.osts) {
    system_->ost(ost).store.extentTruncate(kLustreCont, fidOid(inode->fid),
                                           "", "0", size);
  }
  inode->size = size;
}

}  // namespace daosim::lustre
