// Lustre-like distributed POSIX file system.
//
// Deployment matches the paper's §III-E: OSS nodes each exposing one OST per
// local NVMe device, plus one MDS node (single NVMe) serving all metadata.
// Every namespace operation (lookup/open-intent, create, close, stat,
// unlink, readdir) is an RPC to the single MDS — the centralized-metadata
// design whose saturation explains fdb-hammer's read ceiling in Fig. 7.
// Bulk data moves directly between clients and OSTs with files striped
// round-robin at `stripe_size` across `stripe_count` OSTs.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hw/cluster.h"
#include "net/rpc.h"
#include "obs/observer.h"
#include "posix/vfs.h"
#include "sim/queue_station.h"
#include "vos/target_store.h"

namespace daosim::lustre {

struct LustreConfig {
  int osts_per_oss = 16;
  int default_stripe_count = 1;
  std::uint64_t default_stripe_size = 1 << 20;
  /// MDS request service time (intent lookup, create, close, getattr) and
  /// service thread count.
  sim::Time mds_service = 80 * sim::kMicrosecond;
  int mds_threads = 16;
  /// Journal record appended for each namespace mutation; records are
  /// group-committed to the MDS NVMe in `mds_journal_batch`-byte writes
  /// (Lustre's llog/transaction batching), so the journal device does not
  /// serialize individual creates.
  std::uint64_t mds_journal_bytes = 512;
  std::uint64_t mds_journal_batch = 64 * 1024;
  /// Per-RPC CPU on an OST.
  sim::Time ost_service_cpu = 4 * sim::kMicrosecond;
  bool retain_data = true;
};

struct StripeLayout {
  int stripe_count = 1;
  std::uint64_t stripe_size = 1 << 20;
  std::vector<int> osts;  // global OST indices, one per stripe
};

struct Inode {
  std::uint64_t fid = 0;
  bool is_directory = false;
  std::uint64_t size = 0;
  StripeLayout layout;
};

class LustreSystem {
 public:
  LustreSystem(hw::Cluster& cluster, std::vector<hw::NodeId> oss_nodes,
               hw::NodeId mds_node, LustreConfig config = {});

  hw::Cluster& cluster() noexcept { return *cluster_; }
  const LustreConfig& config() const noexcept { return config_; }
  hw::NodeId mdsNode() const noexcept { return mds_node_; }
  int ostCount() const noexcept { return static_cast<int>(osts_.size()); }

  struct Ost {
    Ost(sim::Simulation& sim, hw::NodeId n, hw::NvmeDevice& d,
        std::string name, bool retain)
        : node(n), device(&d), cpu(sim, std::move(name), 1), store(retain) {}
    hw::NodeId node;
    hw::NvmeDevice* device;
    sim::QueueStation cpu;
    vos::TargetStore store;
  };
  Ost& ost(int global) noexcept { return *osts_[static_cast<std::size_t>(global)]; }

  // ---- MDS server-side handlers (run inside an RPC) --------------------
  /// One metadata service slot: queue on the MDS threads, service time,
  /// and (for mutations) a journal write to the MDS NVMe.
  sim::Task<void> mdsOp(bool mutation, obs::OpId op = 0);

  // Namespace state (guarded by the MDS being a single service).
  std::map<std::string, Inode>& namespaceMap() noexcept { return namespace_; }
  Inode* find(const std::string& path);
  Inode& createInode(const std::string& path, bool dir, int stripe_count,
                     std::uint64_t stripe_size);
  void removeInode(const std::string& path);
  std::uint64_t bytesStored() const;
  const sim::QueueStation& mdsStation() const noexcept { return mds_threads_; }

 private:
  hw::Cluster* cluster_;
  LustreConfig config_;
  hw::NodeId mds_node_;
  sim::QueueStation mds_threads_;
  hw::NvmeDevice* mds_device_;
  std::vector<std::unique_ptr<Ost>> osts_;
  std::map<std::string, Inode> namespace_;
  std::uint64_t next_fid_ = 1;
  int alloc_cursor_ = 0;  // round-robin OST allocator
  std::uint64_t journal_pending_ = 0;
};

/// POSIX client for a Lustre system (one per simulated process).
class LustreVfs : public posix::Vfs {
 public:
  /// stripe_count <= 0 means the file-system default. The paper's fdb runs
  /// use stripe_count=8, stripe_size=8 MiB.
  LustreVfs(LustreSystem& system, hw::NodeId client_node,
            int stripe_count = 0, std::uint64_t stripe_size = 0)
      : system_(&system),
        node_(client_node),
        stripe_count_(stripe_count),
        stripe_size_(stripe_size) {}

  sim::Task<posix::Fd> open(std::string path, posix::OpenFlags flags) override;
  sim::Task<void> close(posix::Fd fd) override;
  sim::Task<std::uint64_t> pwrite(posix::Fd fd, std::uint64_t offset,
                                  vos::Payload data) override;
  sim::Task<vos::Payload> pread(posix::Fd fd, std::uint64_t offset,
                                std::uint64_t length) override;
  sim::Task<posix::FileStat> stat(std::string path) override;
  sim::Task<posix::FileStat> fstat(posix::Fd fd) override;
  sim::Task<void> fsync(posix::Fd fd) override;
  sim::Task<void> mkdir(std::string path) override;
  sim::Task<void> mkdirs(std::string path) override;
  sim::Task<void> unlink(std::string path) override;
  sim::Task<std::vector<std::string>> readdir(std::string path) override;
  sim::Task<void> truncate(std::string path, std::uint64_t size) override;
  sim::Task<void> rename(std::string from, std::string to) override;

 private:
  /// Metadata round trip to the MDS.
  sim::Task<void> mdsCall(bool mutation, obs::OpId op = 0);
  sim::Task<void> writeStripe(std::uint64_t fid, int ost_global,
                              std::uint64_t offset, vos::Payload piece,
                              obs::OpId op);
  sim::Task<vos::Payload> readStripe(std::uint64_t fid, int ost_global,
                                     std::uint64_t offset,
                                     std::uint64_t length, obs::OpId op);

  LustreSystem* system_;
  hw::NodeId node_;
  int stripe_count_;
  std::uint64_t stripe_size_;
  std::map<posix::Fd, Inode*> files_;
};

}  // namespace daosim::lustre
