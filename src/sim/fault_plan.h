// Deterministic, schedulable fault plans.
//
// A FaultPlan is a pure-data list of timed fault events — device
// fail/recover, administrative exclusion, device slowdown, NIC flap,
// engine stall — kept sorted by (time, insertion order). Plans come from
// the `--faults` grammar below or from a seeded generator; they carry no
// references to hardware, so the sim layer stays free of hw/daos
// dependencies. apps::FaultInjector walks a plan on a testbed's kernel,
// applying each event at its exact simulated time, which is what makes
// chaos runs bit-reproducible serially and under --jobs N.
//
// Grammar (events separated by ';', whitespace around tokens ignored):
//
//   fail@TIME:tN         fail the device behind pool-global target N
//   recover@TIME:tN      recover it
//   exclude@TIME:tN      fail + pool-map exclusion (+ background rebuild,
//                        when driven by apps::FaultInjector)
//   slow@TIME:tN,xF      scale target N's device service/latency by F
//                        (F >= 1; x1 restores full speed)
//   flap@TIME:nN,DUR     take node N's NIC down for DUR (a partition is a
//                        set of concurrent flaps)
//   stall@TIME:eN,DUR    occupy every target xstream of engine N for DUR
//
// or a whole seeded plan:
//
//   random:seed=S,events=K,horizon=DUR
//
// TIME/DUR accept ns/us/ms/s suffixes; bare numbers are nanoseconds.
// Example: "slow@40ms:t7,x8;flap@120ms:n5,15ms;exclude@200ms:t3".
//
// Generated plans keep at most one target dead (failed or excluded) at any
// instant, so any object class with one redundancy level (RP_2*, EC_xP1*)
// keeps its acknowledged data readable throughout the plan — the invariant
// tests/fault_test.cc's property suite leans on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.h"

namespace daosim::sim {

enum class FaultKind : std::uint8_t {
  kTargetFail,
  kTargetRecover,
  kTargetExclude,
  kTargetSlow,
  kNicFlap,
  kEngineStall,
};

/// Stable grammar keyword for a kind ("fail", "recover", ...).
const char* faultKindName(FaultKind k) noexcept;

struct FaultEvent {
  Time at = 0;
  FaultKind kind = FaultKind::kTargetFail;
  /// Target index (fail/recover/exclude/slow), node id (flap) or engine
  /// index (stall).
  int subject = 0;
  double factor = 1.0;  // kTargetSlow only
  Time duration = 0;    // kNicFlap / kEngineStall only
};

/// Deployment shape used to validate subjects and to scope the generator.
/// Zero fields skip the corresponding range check (parse-only use).
struct FaultTopology {
  int targets = 0;
  int engines = 0;
  int nodes = 0;
};

class FaultPlan {
 public:
  FaultPlan() = default;

  /// Parses the grammar above (or a "random:" spec, which delegates to
  /// random()). Throws std::invalid_argument on malformed specs and
  /// std::out_of_range on subjects outside `topo`. An empty spec is an
  /// empty plan.
  static FaultPlan parse(const std::string& spec, const FaultTopology& topo);

  /// Seeded plan over [horizon/8, horizon]: slowdowns (with restore), NIC
  /// flaps, engine stalls and fail/recover windows, all drawn from a
  /// sim::Rng(seed). At most one target is ever dead concurrently (see
  /// file comment).
  static FaultPlan random(std::uint64_t seed, const FaultTopology& topo,
                          int events, Time horizon);

  /// Inserts keeping (at, insertion-order) sort.
  void add(const FaultEvent& e);

  bool empty() const noexcept { return events_.empty(); }
  std::size_t size() const noexcept { return events_.size(); }
  const std::vector<FaultEvent>& events() const noexcept { return events_; }

  /// Canonical spec string (re-parses to an identical plan).
  std::string describe() const;

 private:
  std::vector<FaultEvent> events_;
};

/// Parses a duration: a plain number is nanoseconds; "ns"/"us"/"ms"/"s"
/// suffixes are honoured ("10ms", "500us"). Throws std::invalid_argument
/// on junk or non-positive values. (apps::parseDuration delegates here.)
Time parseDuration(const std::string& s);

}  // namespace daosim::sim
