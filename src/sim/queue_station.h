// FIFO queueing station: the basic contention model of the simulator.
//
// A QueueStation has `servers` identical servers. exec(service) queues the
// calling coroutine FIFO, occupies one server for `service` simulated time,
// and returns. Saturation throughput is servers/service; under low load the
// station contributes pure latency. NVMe devices, NIC directions, target
// xstreams, the Lustre MDS, Ceph OSD op threads and the DFUSE daemon are all
// instances of this model with different parameters.
#pragma once

#include <cstdint>
#include <string>

#include "sim/simulation.h"
#include "sim/stats.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "sim/time.h"

namespace daosim::sim {

class QueueStation {
 public:
  QueueStation(Simulation& sim, std::string name, int servers)
      : sim_(&sim), name_(std::move(name)), sem_(sim, servers) {}

  /// Occupies one server for `service` time, FIFO-queued.
  Task<void> exec(Time service) {
    const Time queued_at = sim_->now();
    co_await sem_.acquire();
    wait_ns_ += sim_->now() - queued_at;
    co_await sim_->delay(service);
    sem_.release();
    busy_ns_ += service;
    ++ops_;
  }

  /// Manually occupies a server for work whose duration is not known up
  /// front (e.g. a FUSE thread held across a backend operation). Pair with
  /// leave(); prefer exec() where possible. Busy-time stats are not
  /// accumulated for manually held servers.
  sim::Task<void> enter() {
    const Time queued_at = sim_->now();
    co_await sem_.acquire();
    wait_ns_ += sim_->now() - queued_at;
    ++ops_;
  }
  void leave() { sem_.release(); }

  const std::string& name() const noexcept { return name_; }
  std::uint64_t ops() const noexcept { return ops_; }
  Time busyTime() const noexcept { return busy_ns_; }
  Time totalWait() const noexcept { return wait_ns_; }
  std::size_t queueLength() const noexcept { return sem_.waiting(); }

  /// Mean queueing delay per operation, in ns.
  double meanWait() const noexcept {
    return ops_ ? static_cast<double>(wait_ns_) / static_cast<double>(ops_)
                : 0.0;
  }

  /// Busy fraction of one server-equivalent over [0, horizon].
  double utilization(Time horizon) const noexcept {
    return horizon ? static_cast<double>(busy_ns_) /
                         static_cast<double>(horizon)
                   : 0.0;
  }

  void resetStats() noexcept {
    ops_ = 0;
    busy_ns_ = 0;
    wait_ns_ = 0;
  }

 private:
  Simulation* sim_;
  std::string name_;
  Semaphore sem_;
  std::uint64_t ops_ = 0;
  Time busy_ns_ = 0;
  Time wait_ns_ = 0;
};

}  // namespace daosim::sim
