// FIFO queueing station: the basic contention model of the simulator.
//
// A QueueStation has `servers` identical servers. exec(service) queues the
// calling coroutine FIFO, occupies one server for `service` simulated time,
// and returns. Saturation throughput is servers/service; under low load the
// station contributes pure latency. NVMe devices, NIC directions, target
// xstreams, the Lustre MDS, Ceph OSD op threads and the DFUSE daemon are all
// instances of this model with different parameters.
#pragma once

#include <cstdint>
#include <string>

#include "obs/observer.h"
#include "sim/simulation.h"
#include "sim/stats.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "sim/time.h"

namespace daosim::sim {

class QueueStation {
 public:
  QueueStation(Simulation& sim, std::string name, int servers)
      : sim_(&sim), name_(std::move(name)), sem_(sim, servers) {}

  /// Occupies one server for `service` time, FIFO-queued. `op` (if nonzero
  /// and an observer is attached) gets one station leg recorded whose
  /// queue-wait/service split is explicit; the wait charges to
  /// Cat::kServerQueue and the service to `cat`. `nested` records the leg
  /// as structure-only (no aggregate charge) for stations that run under a
  /// charging parent leg, e.g. NIC tx/rx inside Cluster::send's "send".
  Task<void> exec(Time service, obs::OpId op = 0,
                  obs::Cat cat = obs::Cat::kService, bool nested = false) {
    const Time queued_at = sim_->now();
    co_await sem_.acquire();
    const Time acquired_at = sim_->now();
    wait_ns_ += acquired_at - queued_at;
    if (sim_->observer() != nullptr) {
      wait_hist_.add(acquired_at - queued_at);
    }
    co_await sim_->delay(service);
    sem_.release();
    busy_ns_ += service;
    ++ops_;
    if (op != 0) {
      if (obs::Observer* o = sim_->observer()) {
        const Time wait = acquired_at - queued_at;
        if (nested) {
          o->structLeg(op, cat, obsTrack(o), "service", queued_at, wait);
        } else {
          o->leg(op, cat, obsTrack(o), "service", queued_at, wait);
        }
      }
    }
  }

  /// Reserves the single server for `service` time starting now, without
  /// suspending, and returns the completion time. For a single-server FIFO
  /// station exec()'s completion instant is fully determined at enqueue —
  /// completion = max(now, previous completion) + service — so a caller
  /// that needs the timestamp *before* the work completes can take it
  /// analytically. The sharded Cluster send path depends on this: the
  /// transmit-side completion must travel with the message to the receiving
  /// shard, and suspending on the sender's semaphore would create a
  /// zero-lookahead return edge. Bookkeeping (ops, wait, busy, wait
  /// histogram) matches exec() exactly. A station must be driven through
  /// either exec() or reserve() for a whole run, never a mix: exec() queues
  /// on the semaphore, which does not see reservations.
  Time reserve(Time service) {
    const Time now = sim_->now();
    const Time start = free_at_ > now ? free_at_ : now;
    const Time wait = start - now;
    wait_ns_ += wait;
    if (sim_->observer() != nullptr) wait_hist_.add(wait);
    free_at_ = start + service;
    busy_ns_ += service;
    ++ops_;
    return free_at_;
  }

  /// reserve() recording a station leg for `op`, mirroring exec()'s
  /// instrumentation: the leg spans [now, completion] with the queue-wait
  /// prefix explicit. The completion lies in the future, so the leg is
  /// recorded with an explicit end time (Observer::structLegAt/legAt); the
  /// sharded Cluster send path uses this to keep NIC legs on the sharded
  /// path identical to exec()'s on the serial one.
  Time reserve(Time service, obs::OpId op, obs::Cat cat = obs::Cat::kService,
               bool nested = true) {
    const Time queued_at = sim_->now();
    const Time done = reserve(service);
    if (op != 0) {
      if (obs::Observer* o = sim_->observer()) {
        const Time wait = done - service - queued_at;
        if (nested) {
          o->structLegAt(op, cat, obsTrack(o), "service", queued_at, done,
                         wait);
        } else {
          o->legAt(op, cat, obsTrack(o), "service", queued_at, done, wait);
        }
      }
    }
    return done;
  }

  /// Manually occupies a server for work whose duration is not known up
  /// front (e.g. a FUSE thread held across a backend operation). Returns the
  /// acquisition time; pass it to leave() so the hold is accumulated into
  /// busy time. Prefer exec() where possible.
  sim::Task<Time> enter(obs::OpId op = 0) {
    const Time queued_at = sim_->now();
    co_await sem_.acquire();
    const Time acquired_at = sim_->now();
    wait_ns_ += acquired_at - queued_at;
    ++ops_;
    if (obs::Observer* o = sim_->observer()) {
      wait_hist_.add(acquired_at - queued_at);
      if (op != 0) {
        // Pure-wait leg: the whole duration is queueing.
        o->leg(op, obs::Cat::kServerQueue, obsTrack(o), "queue", queued_at,
               acquired_at - queued_at);
      }
    }
    co_return acquired_at;
  }

  /// Releases a server taken with enter(), accumulating the hold duration
  /// into busy time (`acquired_at` is enter()'s return value).
  void leave(Time acquired_at, obs::OpId op = 0) {
    sem_.release();
    busy_ns_ += sim_->now() - acquired_at;
    if (op != 0) {
      if (obs::Observer* o = sim_->observer()) {
        o->leg(op, obs::Cat::kService, obsTrack(o), "service", acquired_at);
      }
    }
  }

  /// Accounts payload bytes moved through this station (NIC directions get
  /// this from Cluster::send); feeds the telemetry bytes/s series.
  void noteBytes(std::uint64_t b) noexcept { bytes_ += b; }
  std::uint64_t bytes() const noexcept { return bytes_; }

  const std::string& name() const noexcept { return name_; }
  std::uint64_t ops() const noexcept { return ops_; }
  Time busyTime() const noexcept { return busy_ns_; }
  Time totalWait() const noexcept { return wait_ns_; }
  std::size_t queueLength() const noexcept { return sem_.waiting(); }

  /// Queue-wait distribution in ns; populated only while an observer is
  /// attached to the simulation.
  const obs::Histogram& waitHistogram() const noexcept { return wait_hist_; }

  /// Node id used as the chrome-trace pid for this station's track.
  void setTracePid(int pid) noexcept { trace_pid_ = pid; }
  int tracePid() const noexcept { return trace_pid_; }

  /// Mean queueing delay per operation, in ns.
  double meanWait() const noexcept {
    return ops_ ? static_cast<double>(wait_ns_) / static_cast<double>(ops_)
                : 0.0;
  }

  /// Busy fraction of one server-equivalent over [0, horizon].
  double utilization(Time horizon) const noexcept {
    return horizon ? static_cast<double>(busy_ns_) /
                         static_cast<double>(horizon)
                   : 0.0;
  }

  void resetStats() noexcept {
    free_at_ = 0;
    ops_ = 0;
    busy_ns_ = 0;
    wait_ns_ = 0;
    bytes_ = 0;
    wait_hist_.reset();
  }

 private:
  /// Track id for this station, cached per observer epoch so a fresh
  /// observer (e.g. a new rep) never sees a stale id.
  obs::TrackId obsTrack(obs::Observer* o) {
    if (track_epoch_ != o->epoch()) {
      track_ = o->track(trace_pid_, name_);
      track_epoch_ = o->epoch();
    }
    return track_;
  }

  Simulation* sim_;
  std::string name_;
  Semaphore sem_;
  Time free_at_ = 0;  ///< reservation clock (reserve() path only)
  std::uint64_t ops_ = 0;
  Time busy_ns_ = 0;
  Time wait_ns_ = 0;
  std::uint64_t bytes_ = 0;
  obs::Histogram wait_hist_;
  int trace_pid_ = 0;
  obs::TrackId track_ = 0;
  std::uint64_t track_epoch_ = 0;
};

}  // namespace daosim::sim
