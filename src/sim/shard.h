// Conservative parallel DES: per-shard event queues with lookahead windows.
//
// A ShardGroup owns K Simulations ("shards"), each with its own two-level
// event queue, clock, sequence counter and RNG lane, and runs them on K
// persistent worker threads using classic conservative (time-window)
// synchronization:
//
//   1. gmin       = min over shards of nextEventTime()
//   2. window_end = gmin + lookahead
//   3. every shard executes, in parallel, all its events with t < window_end
//      (Simulation::runWindow); a shard never touches another shard's state
//   4. barrier; inter-shard mailboxes are flushed in a deterministic order;
//      repeat from 1.
//
// The lookahead is the minimum cross-shard interaction latency — for the
// simulated machine room, the fabric's one-way latency (hw::FabricSpec):
// nothing a shard does at time t can affect another shard before t +
// lookahead, so every event below window_end is safe to run without seeing
// the other shards' windows. Cross-shard interactions are coroutine
// *migrations*: the sending coroutine suspends on migrate() and its handle
// is posted to the destination shard's mailbox with an absolute resume time
// (>= window_end by the lookahead argument, asserted), where it continues
// on the destination's thread. Coroutine frames move freely between threads
// — the FramePool explicitly supports cross-thread free (sim/pool.h).
//
// Determinism: each shard is single-threaded and processes its queue in
// exact (time, seq) order, so a shard's execution depends only on the
// sequence of (time-stamped) mailbox deliveries it receives. Mailboxes are
// flushed at window barriers, sorted by (resume time, source shard, source
// post index) — all three components are scheduling-independent — so two
// runs with the same seed and shard count are identical. Results that merge
// *across* shards must use commutative/associative aggregation (histogram
// bucket adds, min/max, sums), the same contract sweep-level parallelism
// has relied on since the telemetry and exemplar mergers. Note the serial
// kernel is a different total order: per-shard runs are deterministic and
// agree with serial runs wherever cross-shard arrivals do not tie at the
// exact same nanosecond on one station (workloads de-tie with deterministic
// per-rank jitter; tests assert full RunResult equality).
//
// Group-wide rendezvous (the SPMD phase barrier) cannot be a plain
// sim::Barrier — its parties live on different shards, and the last arrival
// is only known once every shard has drained. ShardBarrier therefore
// resolves at *quiescence*: when all queues and mailboxes are empty, any
// barrier whose arrival count is complete releases its waiters at the
// maximum arrival time, exactly the serial Barrier's release time.
#pragma once

#include <condition_variable>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/simulation.h"
#include "sim/time.h"

namespace daosim::sim {

class ShardGroup;

/// Synchronization-protocol counters, reported under daosim_run --stats.
struct ShardSyncStats {
  int shards = 0;
  Time lookahead = 0;
  std::uint64_t windows = 0;           ///< synchronization rounds executed
  std::uint64_t cross_posts = 0;       ///< coroutine migrations between shards
  std::uint64_t barrier_releases = 0;  ///< quiescence barrier resolutions
  std::uint64_t late_releases = 0;     ///< releases clamped to a shard clock
  std::size_t events = 0;              ///< events processed, all shards
  std::vector<std::size_t> shard_events;
};

/// Cyclic barrier whose parties are spread across the shards of one group.
/// arriveAndWait(shard) must be called from a coroutine running on `shard`;
/// the release is injected by the group at quiescence (see file comment).
class ShardBarrier {
 public:
  ShardBarrier(ShardGroup& group, std::size_t parties);

  auto arriveAndWait(int shard) noexcept {
    struct Awaiter {
      ShardBarrier* b;
      int shard;
      bool await_ready() const noexcept { return b->parties_ == 1; }
      void await_suspend(std::coroutine_handle<> h) const {
        b->arrive(shard, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, shard};
  }

  std::uint64_t generation() const noexcept { return generation_; }

 private:
  friend class ShardGroup;

  struct Arrival {
    Time t = 0;
    std::coroutine_handle<> h;
  };

  void arrive(int shard, std::coroutine_handle<> h);
  std::size_t arrived() const noexcept;

  ShardGroup* group_;
  std::size_t parties_;
  std::uint64_t generation_ = 0;
  // One lane per shard, written only by that shard's thread during windows
  // and read by the coordinator at quiescence (the window barrier orders
  // the accesses, so no atomics are needed).
  std::vector<std::vector<Arrival>> lanes_;
};

class ShardGroup {
 public:
  struct Options {
    int shards = 1;
    /// Minimum cross-shard interaction latency; every migrate() must target
    /// a time >= sender-now + lookahead. Must be > 0 when shards > 1.
    Time lookahead = 0;
    std::uint64_t seed = 1;
    /// Per-shard event budget for a single window (livelock guard).
    std::size_t max_window_events = ~std::size_t{0};
  };

  explicit ShardGroup(const Options& opts);
  ~ShardGroup();

  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  int shards() const noexcept { return static_cast<int>(sims_.size()); }
  Time lookahead() const noexcept { return lookahead_; }
  Simulation& shard(int i) noexcept { return *sims_[static_cast<size_t>(i)]; }

  /// Runs all shards to quiescence, resolving group barriers along the way;
  /// returns the total number of events processed. Rethrows the first (by
  /// shard index) exception that escapes a shard's window, without starting
  /// further windows. With shards == 1 the same window loop runs inline on
  /// the calling thread — no worker threads, same protocol overhead — which
  /// is what bench_pdes uses to price the windowing itself.
  std::size_t run();

  const ShardSyncStats& stats() const noexcept { return stats_; }

  /// Awaitable migrating the current coroutine from shard `src` to shard
  /// `dst` (!= src), resuming there at absolute time `t`. Conservative
  /// safety requires t >= sender-now + lookahead; the mailbox asserts the
  /// weaker (implied) invariant t >= window_end.
  auto migrate(int src, int dst, Time t) noexcept {
    struct Awaiter {
      ShardGroup* g;
      int src, dst;
      Time t;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const {
        g->post(src, dst, t, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, src, dst, t};
  }

  /// Posts a raw resumption to `dst`'s mailbox (migrate()'s implementation;
  /// exposed for protocol tests). Called from `src`'s worker thread.
  void post(int src, int dst, Time t, std::coroutine_handle<> h);

 private:
  friend class ShardBarrier;

  struct MailboxEntry {
    Time t = 0;
    int src = 0;
    std::uint64_t idx = 0;  ///< per-(src,dst) post counter, sender-ordered
    std::coroutine_handle<> h;
  };

  /// One inbox per destination shard; senders append under the lock during
  /// windows, the coordinator drains between windows.
  struct Mailbox {
    std::mutex mu;
    std::vector<MailboxEntry> items;
  };

  void runOneWindow(Time window_end);
  void workerLoop(int shard);
  void runShardWindow(int shard);
  /// Drains every mailbox into its shard's queue in deterministic order;
  /// returns the number of migrations delivered.
  std::size_t flushMailboxes();
  /// At quiescence: releases every complete barrier; returns true if any
  /// new events were injected.
  bool resolveBarriers();

  Time lookahead_ = 0;
  std::size_t max_window_events_;
  std::vector<std::unique_ptr<Simulation>> sims_;
  std::vector<std::unique_ptr<Mailbox>> boxes_;
  // post_seq_[src][dst]: owned by src's thread, no sharing within a window.
  std::vector<std::vector<std::uint64_t>> post_seq_;
  std::vector<ShardBarrier*> barriers_;  // registration order
  std::vector<std::exception_ptr> errors_;
  ShardSyncStats stats_;

  // Window dispatch protocol: the coordinator bumps generation_ with
  // window_end_ set, workers run their shard's window and report back via
  // pending_; all fields below mu_.
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;
  Time window_end_ = 0;
  int pending_ = 0;
  bool stop_ = false;
};

}  // namespace daosim::sim
