// Conservative parallel DES: per-shard event queues with lookahead windows.
//
// A ShardGroup owns K Simulations ("shards"), each with its own two-level
// event queue, clock, sequence counter and RNG lane, and runs them on K
// persistent worker threads using classic conservative (time-window)
// synchronization:
//
//   1. gmin       = min over shards of nextEventTime()
//   2. window_end = gmin + lookahead
//   3. every shard executes, in parallel, all its events with t < window_end
//      (Simulation::runWindow); a shard never touches another shard's state
//   4. barrier; inter-shard mailboxes are flushed in a deterministic order;
//      repeat from 1.
//
// The lookahead is the minimum cross-shard interaction latency — for the
// simulated machine room, the fabric's one-way latency (hw::FabricSpec):
// nothing a shard does at time t can affect another shard before t +
// lookahead, so every event below window_end is safe to run without seeing
// the other shards' windows. Cross-shard interactions are coroutine
// *migrations*: the sending coroutine suspends on migrate() and its handle
// is posted to the destination shard's mailbox with an absolute resume time
// (>= window_end by the lookahead argument, asserted), where it continues
// on the destination's thread. Coroutine frames move freely between threads
// — the FramePool explicitly supports cross-thread free (sim/pool.h).
//
// Determinism: each shard is single-threaded and processes its queue in
// exact (time, seq) order, so a shard's execution depends only on the
// sequence of (time-stamped) mailbox deliveries it receives. Mailboxes are
// flushed at window barriers, sorted by (resume time, tie-break key, source
// shard, source post index) — all components are scheduling-independent —
// so two runs with the same seed and shard count are identical.
//
// Shard-count invariance is stronger and needs the caller-supplied tie-break
// *key*: two migrations resuming at the same nanosecond on one shard would
// otherwise be ordered by (source shard, post index), which depends on the
// node->shard map and hence on the shard count. Senders therefore pass a
// key derived only from simulation-level identity (e.g. hw::Cluster keys
// NIC deliveries on hash(src node, dst node, departure time)) and route
// *same-shard* interactions through the mailbox too (migrate with src ==
// dst is legal): every delivery then lands in the same (time, key) order
// for every shard count, including the single-shard group. The window
// horizon itself is shard-count-invariant — gmin is a minimum over the
// whole event population however it is partitioned — so mailbox flushes
// inject events at the same simulated instants regardless of layout.
// Results that merge *across* shards must use commutative/associative
// aggregation (histogram bucket adds, min/max, sums), the same contract
// sweep-level parallelism has relied on since the telemetry and exemplar
// mergers. Note the plain serial kernel (no group) is still a different
// total order: same-time deliveries there follow spawn order, not key
// order; tests therefore compare shard counts against a one-shard group.
//
// Group-wide rendezvous (the SPMD phase barrier) cannot be a plain
// sim::Barrier — its parties live on different shards. ShardBarrier is
// resolved by the coordinator at window boundaries: once every party has
// arrived, waiters release at the maximum arrival time (exactly the
// serial Barrier's release time), clamped to the group-wide maximum
// clock when concurrent non-barrier work — a fault-plan event, a
// background rebuild — outran the rendezvous inside the final window.
// Resolution must not wait for quiescence: unrelated work scheduled for
// later (a fault injector sleeping until its next event) would displace
// the release past it instead of interleaving as the serial kernel does.
#pragma once

#include <condition_variable>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/simulation.h"
#include "sim/time.h"

namespace daosim::sim {

class ShardGroup;

/// Shard the calling thread is currently executing (set for the duration of
/// a shard's window, including the inline single-shard path), or -1 outside
/// any ShardGroup window — i.e. on the plain serial kernel. Lets shared
/// lookup structures (pool maps, link state) select a per-shard replica
/// without threading a shard id through every call signature.
int currentShard() noexcept;

/// Synchronization-protocol counters, reported under daosim_run --stats and
/// exported as the `pdes/*` telemetry subtree. The `*_ns` vectors are
/// wall-clock (std::chrono::steady_clock) measurements of the host threads,
/// not simulated time: they describe how well the shard layout parallelizes
/// and are therefore nondeterministic run to run — byte-compare harnesses
/// must filter them (the frozen-output tests and CI exclude `pdes/` rows and
/// the wall-clock stats-report lines).
struct ShardSyncStats {
  int shards = 0;
  Time lookahead = 0;
  std::uint64_t windows = 0;           ///< synchronization rounds executed
  std::uint64_t cross_posts = 0;       ///< coroutine migrations between shards
  std::uint64_t barrier_releases = 0;  ///< quiescence barrier resolutions
  std::uint64_t late_releases = 0;     ///< releases clamped to a shard clock
  std::uint64_t mailbox_flushes = 0;   ///< nonempty per-destination drains
  std::uint64_t mailbox_entries = 0;   ///< entries moved by those drains
  std::uint64_t mailbox_bytes = 0;     ///< entries * sizeof(MailboxEntry)
  std::size_t events = 0;              ///< events processed, all shards
  std::vector<std::size_t> shard_events;
  /// Wall-clock ns each shard's thread spent executing its windows.
  std::vector<std::uint64_t> shard_busy_ns;
  /// Wall-clock ns each worker spent parked between windows (barrier wait;
  /// zero on the inline single-shard path, which has no workers).
  std::vector<std::uint64_t> shard_wait_ns;
};

/// Cyclic barrier whose parties are spread across the shards of one group.
/// arriveAndWait(shard) must be called from a coroutine running on `shard`;
/// the release is injected by the group at quiescence (see file comment).
class ShardBarrier {
 public:
  ShardBarrier(ShardGroup& group, std::size_t parties);

  auto arriveAndWait(int shard) noexcept {
    struct Awaiter {
      ShardBarrier* b;
      int shard;
      bool await_ready() const noexcept { return b->parties_ == 1; }
      void await_suspend(std::coroutine_handle<> h) const {
        b->arrive(shard, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, shard};
  }

  std::uint64_t generation() const noexcept { return generation_; }

 private:
  friend class ShardGroup;

  struct Arrival {
    Time t = 0;
    std::coroutine_handle<> h;
  };

  void arrive(int shard, std::coroutine_handle<> h);
  std::size_t arrived() const noexcept;

  ShardGroup* group_;
  std::size_t parties_;
  std::uint64_t generation_ = 0;
  // One lane per shard, written only by that shard's thread during windows
  // and read by the coordinator at quiescence (the window barrier orders
  // the accesses, so no atomics are needed).
  std::vector<std::vector<Arrival>> lanes_;
};

class ShardGroup {
 public:
  struct Options {
    int shards = 1;
    /// Minimum cross-shard interaction latency; every migrate() must target
    /// a time >= sender-now + lookahead. Must be > 0 when shards > 1.
    Time lookahead = 0;
    std::uint64_t seed = 1;
    /// Per-shard event budget for a single window (livelock guard).
    std::size_t max_window_events = ~std::size_t{0};
  };

  explicit ShardGroup(const Options& opts);
  ~ShardGroup();

  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  int shards() const noexcept { return static_cast<int>(sims_.size()); }
  Time lookahead() const noexcept { return lookahead_; }
  Simulation& shard(int i) noexcept { return *sims_[static_cast<size_t>(i)]; }

  /// Runs all shards to quiescence, resolving group barriers along the way;
  /// returns the total number of events processed. Rethrows the first (by
  /// shard index) exception that escapes a shard's window, without starting
  /// further windows. With shards == 1 the same window loop runs inline on
  /// the calling thread — no worker threads, same protocol overhead — which
  /// is what bench_pdes uses to price the windowing itself.
  std::size_t run();

  const ShardSyncStats& stats() const noexcept { return stats_; }

  /// Awaitable migrating the current coroutine from shard `src` to shard
  /// `dst`, resuming there at absolute time `t`. src == dst is legal and
  /// routes through the same mailbox — the way a sender makes a same-shard
  /// delivery order-comparable with cross-shard ones. Conservative safety
  /// requires t >= sender-now + lookahead; the mailbox asserts the weaker
  /// (implied) invariant t >= window_end. Same-time deliveries on one
  /// shard resume in ascending `key` order (see the file comment); pass a
  /// key derived from shard-count-invariant identity, never from shard ids.
  auto migrate(int src, int dst, Time t, std::uint64_t key = 0) noexcept {
    struct Awaiter {
      ShardGroup* g;
      int src, dst;
      Time t;
      std::uint64_t key;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const {
        g->post(src, dst, t, key, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, src, dst, t, key};
  }

  /// Posts a raw resumption to `dst`'s mailbox (migrate()'s implementation;
  /// exposed for protocol tests). Called from `src`'s worker thread.
  void post(int src, int dst, Time t, std::uint64_t key,
            std::coroutine_handle<> h);

 private:
  friend class ShardBarrier;

  struct MailboxEntry {
    Time t = 0;
    std::uint64_t key = 0;  ///< caller tie-break, shard-count-invariant
    int src = 0;
    std::uint64_t idx = 0;  ///< per-(src,dst) post counter, sender-ordered
    std::coroutine_handle<> h;
  };

  /// One inbox per destination shard; senders append under the lock during
  /// windows, the coordinator drains between windows.
  struct Mailbox {
    std::mutex mu;
    std::vector<MailboxEntry> items;
  };

  void runOneWindow(Time window_end);
  void workerLoop(int shard);
  void runShardWindow(int shard);
  /// Drains every mailbox into its shard's queue in deterministic order;
  /// returns the number of migrations delivered.
  std::size_t flushMailboxes();
  /// At quiescence: releases every complete barrier; returns true if any
  /// new events were injected.
  bool resolveBarriers();

  Time lookahead_ = 0;
  std::size_t max_window_events_;
  std::vector<std::unique_ptr<Simulation>> sims_;
  std::vector<std::unique_ptr<Mailbox>> boxes_;
  // post_seq_[src][dst]: owned by src's thread, no sharing within a window.
  std::vector<std::vector<std::uint64_t>> post_seq_;
  std::vector<ShardBarrier*> barriers_;  // registration order
  std::vector<std::exception_ptr> errors_;
  ShardSyncStats stats_;

  // Window dispatch protocol: the coordinator bumps generation_ with
  // window_end_ set, workers run their shard's window and report back via
  // pending_; all fields below mu_.
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;
  Time window_end_ = 0;
  int pending_ = 0;
  bool stop_ = false;
};

}  // namespace daosim::sim
