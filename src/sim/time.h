// Simulated-time definitions for the discrete-event kernel.
//
// All simulated durations and instants are integer nanoseconds. Integer time
// keeps event ordering exact and reproducible across platforms (no FP drift),
// which the repeatability tests rely on.
#pragma once

#include <cstdint>

namespace daosim::sim {

/// A simulated instant or duration, in nanoseconds.
using Time = std::uint64_t;

inline constexpr Time kNanosecond = 1;
inline constexpr Time kMicrosecond = 1'000;
inline constexpr Time kMillisecond = 1'000'000;
inline constexpr Time kSecond = 1'000'000'000;

/// Converts a simulated instant to seconds (for reporting only).
constexpr double toSeconds(Time t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Converts seconds to simulated time, rounding to the nearest nanosecond.
constexpr Time fromSeconds(double s) noexcept {
  return static_cast<Time>(s * static_cast<double>(kSecond) + 0.5);
}

namespace literals {

constexpr Time operator""_ns(unsigned long long v) { return v; }
constexpr Time operator""_us(unsigned long long v) { return v * kMicrosecond; }
constexpr Time operator""_ms(unsigned long long v) { return v * kMillisecond; }
constexpr Time operator""_s(unsigned long long v) { return v * kSecond; }

}  // namespace literals

}  // namespace daosim::sim
