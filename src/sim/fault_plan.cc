#include "sim/fault_plan.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <stdexcept>

#include "sim/rng.h"

namespace daosim::sim {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

FaultKind kindFromName(const std::string& name) {
  if (name == "fail") return FaultKind::kTargetFail;
  if (name == "recover") return FaultKind::kTargetRecover;
  if (name == "exclude") return FaultKind::kTargetExclude;
  if (name == "slow") return FaultKind::kTargetSlow;
  if (name == "flap") return FaultKind::kNicFlap;
  if (name == "stall") return FaultKind::kEngineStall;
  throw std::invalid_argument("FaultPlan: unknown fault kind: " + name);
}

/// Subject letter each kind addresses ('t'arget, 'n'ode, 'e'ngine).
char subjectPrefix(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kNicFlap:
      return 'n';
    case FaultKind::kEngineStall:
      return 'e';
    default:
      return 't';
  }
}

int parseSubject(const std::string& tok, FaultKind kind) {
  const char want = subjectPrefix(kind);
  if (tok.size() < 2 || tok[0] != want) {
    throw std::invalid_argument(std::string("FaultPlan: ") +
                                faultKindName(kind) + " takes a '" + want +
                                "N' subject, got: " + tok);
  }
  std::size_t pos = 0;
  int v = 0;
  try {
    v = std::stoi(tok.substr(1), &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("FaultPlan: bad subject: " + tok);
  }
  if (pos + 1 != tok.size() || v < 0) {
    throw std::invalid_argument("FaultPlan: bad subject: " + tok);
  }
  return v;
}

void checkRange(FaultKind kind, int subject, const FaultTopology& topo) {
  int limit = 0;
  const char* what = "target";
  switch (kind) {
    case FaultKind::kNicFlap:
      limit = topo.nodes;
      what = "node";
      break;
    case FaultKind::kEngineStall:
      limit = topo.engines;
      what = "engine";
      break;
    default:
      limit = topo.targets;
      break;
  }
  if (limit > 0 && subject >= limit) {
    throw std::out_of_range("FaultPlan: " + std::string(what) + " " +
                            std::to_string(subject) + " out of range [0, " +
                            std::to_string(limit) + ")");
  }
}

FaultEvent parseEvent(const std::string& raw, const FaultTopology& topo) {
  const std::string s = trim(raw);
  const std::size_t at = s.find('@');
  const std::size_t colon = s.find(':', at == std::string::npos ? 0 : at);
  if (at == std::string::npos || colon == std::string::npos) {
    throw std::invalid_argument("FaultPlan: expected kind@time:args, got: " +
                                s);
  }
  FaultEvent e;
  e.kind = kindFromName(trim(s.substr(0, at)));
  e.at = parseDuration(trim(s.substr(at + 1, colon - at - 1)));
  const std::vector<std::string> args = split(s.substr(colon + 1), ',');
  if (args.empty() || args[0].empty()) {
    throw std::invalid_argument("FaultPlan: missing subject in: " + s);
  }
  e.subject = parseSubject(trim(args[0]), e.kind);
  checkRange(e.kind, e.subject, topo);

  switch (e.kind) {
    case FaultKind::kTargetSlow: {
      if (args.size() != 2) {
        throw std::invalid_argument("FaultPlan: slow takes tN,xF: " + s);
      }
      const std::string f = trim(args[1]);
      if (f.size() < 2 || f[0] != 'x') {
        throw std::invalid_argument("FaultPlan: slow factor must be xF: " + s);
      }
      try {
        e.factor = std::stod(f.substr(1));
      } catch (const std::exception&) {
        throw std::invalid_argument("FaultPlan: bad slow factor: " + s);
      }
      if (!(e.factor >= 1.0)) {
        throw std::invalid_argument("FaultPlan: slow factor must be >= 1: " +
                                    s);
      }
      break;
    }
    case FaultKind::kNicFlap:
    case FaultKind::kEngineStall:
      if (args.size() != 2) {
        throw std::invalid_argument(std::string("FaultPlan: ") +
                                    faultKindName(e.kind) +
                                    " takes subject,DURATION: " + s);
      }
      e.duration = parseDuration(trim(args[1]));
      break;
    default:
      if (args.size() != 1) {
        throw std::invalid_argument(std::string("FaultPlan: ") +
                                    faultKindName(e.kind) +
                                    " takes only a subject: " + s);
      }
      break;
  }
  return e;
}

std::uint64_t parseRandomField(const std::string& spec, const std::string& kv,
                               const std::string& key, bool duration) {
  const std::string v = trim(kv.substr(key.size() + 1));
  if (duration) return parseDuration(v);
  try {
    return std::stoull(v);
  } catch (const std::exception&) {
    throw std::invalid_argument("FaultPlan: bad random field in: " + spec);
  }
}

FaultPlan parseRandom(const std::string& spec, const FaultTopology& topo) {
  std::uint64_t seed = 1;
  int events = 4;
  Time horizon = 500 * kMillisecond;
  for (const std::string& raw : split(spec.substr(7), ',')) {
    const std::string kv = trim(raw);
    if (kv.rfind("seed=", 0) == 0) {
      seed = parseRandomField(spec, kv, "seed", false);
    } else if (kv.rfind("events=", 0) == 0) {
      events = static_cast<int>(parseRandomField(spec, kv, "events", false));
    } else if (kv.rfind("horizon=", 0) == 0) {
      horizon = parseRandomField(spec, kv, "horizon", true);
    } else {
      throw std::invalid_argument("FaultPlan: unknown random field in: " +
                                  spec);
    }
  }
  return FaultPlan::random(seed, topo, events, horizon);
}

std::string formatTime(Time t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lluns",
                static_cast<unsigned long long>(t));
  return buf;
}

}  // namespace

const char* faultKindName(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kTargetFail:
      return "fail";
    case FaultKind::kTargetRecover:
      return "recover";
    case FaultKind::kTargetExclude:
      return "exclude";
    case FaultKind::kTargetSlow:
      return "slow";
    case FaultKind::kNicFlap:
      return "flap";
    case FaultKind::kEngineStall:
      return "stall";
  }
  return "?";
}

void FaultPlan::add(const FaultEvent& e) {
  auto it = std::upper_bound(
      events_.begin(), events_.end(), e,
      [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  events_.insert(it, e);
}

FaultPlan FaultPlan::parse(const std::string& spec,
                           const FaultTopology& topo) {
  FaultPlan plan;
  const std::string trimmed = trim(spec);
  if (trimmed.empty()) return plan;
  if (trimmed.rfind("random:", 0) == 0) return parseRandom(trimmed, topo);
  for (const std::string& ev : split(trimmed, ';')) {
    if (trim(ev).empty()) continue;
    plan.add(parseEvent(ev, topo));
  }
  return plan;
}

FaultPlan FaultPlan::random(std::uint64_t seed, const FaultTopology& topo,
                            int events, Time horizon) {
  FaultPlan plan;
  if (events <= 0 || horizon == 0) return plan;
  Rng rng(seed);
  const Time lo = std::max<Time>(1, horizon / 8);
  // The single target that is ever allowed to die (fail or exclude): this
  // is what keeps generated plans within a one-failure redundancy bound.
  int victim = -1;
  bool excluded = false;
  auto pickVictim = [&]() {
    if (victim < 0) {
      victim = topo.targets > 0
                   ? static_cast<int>(rng.uniform(
                         0, static_cast<std::uint64_t>(topo.targets) - 1))
                   : 0;
    }
    return victim;
  };
  for (int i = 0; i < events; ++i) {
    FaultEvent e;
    e.at = rng.uniform(lo, horizon);
    switch (rng.uniform(0, 3)) {
      case 0: {  // slowdown window with restore
        e.kind = FaultKind::kTargetSlow;
        e.subject = topo.targets > 1
                        ? static_cast<int>(rng.uniform(
                              0, static_cast<std::uint64_t>(topo.targets) - 1))
                        : 0;
        e.factor = 2.0 + static_cast<double>(rng.uniform(0, 6));
        plan.add(e);
        FaultEvent restore = e;
        restore.at = e.at + rng.uniform(horizon / 16 + 1, horizon / 4 + 1);
        restore.factor = 1.0;
        plan.add(restore);
        break;
      }
      case 1: {  // NIC flap
        e.kind = FaultKind::kNicFlap;
        e.subject = topo.nodes > 1
                        ? static_cast<int>(rng.uniform(
                              0, static_cast<std::uint64_t>(topo.nodes) - 1))
                        : 0;
        e.duration = rng.uniform(horizon / 32 + 1, horizon / 8 + 1);
        plan.add(e);
        break;
      }
      case 2: {  // engine stall
        e.kind = FaultKind::kEngineStall;
        e.subject = topo.engines > 1
                        ? static_cast<int>(rng.uniform(
                              0, static_cast<std::uint64_t>(topo.engines) - 1))
                        : 0;
        e.duration = rng.uniform(horizon / 64 + 1, horizon / 16 + 1);
        plan.add(e);
        break;
      }
      default: {  // victim fail window, or a one-time exclusion
        if (!excluded && rng.uniform(0, 1) == 0) {
          excluded = true;
          e.kind = FaultKind::kTargetExclude;
          e.subject = pickVictim();
          // An exclusion never recovers; pin it after every fail window so
          // the single-dead-target invariant holds trivially.
          e.at = horizon + rng.uniform(1, horizon / 4 + 1);
          plan.add(e);
        } else if (!excluded) {
          e.kind = FaultKind::kTargetFail;
          e.subject = pickVictim();
          plan.add(e);
          FaultEvent rec = e;
          rec.kind = FaultKind::kTargetRecover;
          rec.at = e.at + rng.uniform(horizon / 32 + 1, horizon / 8 + 1);
          plan.add(rec);
        }
        break;
      }
    }
  }
  // Overlapping fail/recover windows on the victim could recover it early;
  // sort guarantees ordering, and a trailing recover restores the device
  // before any exclusion-triggered rebuild reads survivors.
  return plan;
}

std::string FaultPlan::describe() const {
  std::string out;
  for (const FaultEvent& e : events_) {
    if (!out.empty()) out += ';';
    out += faultKindName(e.kind);
    out += '@';
    out += formatTime(e.at);
    out += ':';
    out += subjectPrefix(e.kind);
    out += std::to_string(e.subject);
    if (e.kind == FaultKind::kTargetSlow) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), ",x%g", e.factor);
      out += buf;
    } else if (e.kind == FaultKind::kNicFlap ||
               e.kind == FaultKind::kEngineStall) {
      out += ',';
      out += formatTime(e.duration);
    }
  }
  return out;
}

Time parseDuration(const std::string& s) {
  if (s.empty()) throw std::invalid_argument("empty duration");
  std::size_t pos = 0;
  double v = 0;
  try {
    v = std::stod(s, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("bad duration: " + s);
  }
  const std::string unit = s.substr(pos);
  double scale = 1;  // bare number = nanoseconds
  if (unit == "s") {
    scale = 1e9;
  } else if (unit == "ms") {
    scale = 1e6;
  } else if (unit == "us") {
    scale = 1e3;
  } else if (!unit.empty() && unit != "ns") {
    throw std::invalid_argument("bad duration unit in: " + s);
  }
  const double ns = v * scale;
  if (!(ns >= 1)) {
    throw std::invalid_argument("duration must be >= 1ns: " + s);
  }
  return static_cast<Time>(ns);
}

}  // namespace daosim::sim
