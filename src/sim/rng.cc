#include "sim/rng.h"

#include <cmath>

namespace daosim::sim {

double Rng::exponential(double mean) noexcept {
  if (mean <= 0.0) return 0.0;
  double u = real01();
  // Guard against log(0); real01() < 1 so 1-u > 0 already, but be explicit.
  if (u >= 1.0) u = 0x1.fffffffffffffp-1;
  return -mean * std::log1p(-u);
}

}  // namespace daosim::sim
