// Synchronization primitives for simulated coroutines.
//
// All primitives resume waiters *through the scheduler* (at the current
// simulated time) rather than inline, which keeps resumption order FIFO and
// deterministic and bounds native stack depth. Semaphore uses hand-off
// semantics: release() grants the permit directly to the oldest waiter, so
// queueing is strictly fair (no barging) — important for the queueing-station
// models built on top of it.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <vector>

#include "sim/simulation.h"
#include "sim/task.h"

namespace daosim::sim {

/// One-shot event: waiters block until set() is called; waits after set()
/// complete immediately. set() is idempotent.
class Event {
 public:
  explicit Event(Simulation& sim) : sim_(&sim) {}

  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  bool isSet() const noexcept { return set_; }

  void set() {
    if (set_) return;
    set_ = true;
    for (auto h : waiters_) sim_->scheduleAt(sim_->now(), h);
    waiters_.clear();
  }

  auto wait() noexcept {
    struct Awaiter {
      Event* ev;
      bool await_ready() const noexcept { return ev->set_; }
      void await_suspend(std::coroutine_handle<> h) const {
        ev->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  Simulation* sim_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Counting semaphore with FIFO hand-off.
class Semaphore {
 public:
  Semaphore(Simulation& sim, std::int64_t count)
      : sim_(&sim), count_(count) {
    assert(count >= 0);
  }

  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  std::int64_t available() const noexcept { return count_; }
  std::size_t waiting() const noexcept { return waiters_.size(); }

  auto acquire() noexcept {
    struct Awaiter {
      Semaphore* sem;
      bool await_ready() const noexcept {
        if (sem->count_ > 0) {
          --sem->count_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) const {
        sem->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  /// Returns a permit; if a coroutine is queued, hands it over directly.
  void release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      sim_->scheduleAt(sim_->now(), h);
    } else {
      ++count_;
    }
  }

 private:
  Simulation* sim_;
  std::int64_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

class Mutex;

/// RAII lock for sim::Mutex (move-only). Released on destruction.
class [[nodiscard]] MutexLock {
 public:
  MutexLock() noexcept = default;
  explicit MutexLock(Mutex* m) noexcept : mutex_(m) {}

  MutexLock(MutexLock&& o) noexcept : mutex_(o.mutex_) { o.mutex_ = nullptr; }
  MutexLock& operator=(MutexLock&& o) noexcept {
    if (this != &o) {
      releaseNow();
      mutex_ = o.mutex_;
      o.mutex_ = nullptr;
    }
    return *this;
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  ~MutexLock() { releaseNow(); }

  void unlock() { releaseNow(); }

 private:
  void releaseNow() noexcept;

  Mutex* mutex_ = nullptr;
};

/// FIFO mutex for simulated coroutines.
class Mutex {
 public:
  explicit Mutex(Simulation& sim) : sem_(sim, 1) {}

  /// `auto lock = co_await mutex.scoped();`
  Task<MutexLock> scoped() {
    co_await sem_.acquire();
    co_return MutexLock(this);
  }

  Task<void> lock() {
    co_await sem_.acquire();
    co_return;
  }
  void unlock() { sem_.release(); }

 private:
  Semaphore sem_;
};

inline void MutexLock::releaseNow() noexcept {
  if (mutex_ != nullptr) {
    mutex_->unlock();
    mutex_ = nullptr;
  }
}

/// Cyclic barrier for a fixed number of participants.
class Barrier {
 public:
  Barrier(Simulation& sim, std::size_t parties)
      : sim_(&sim), parties_(parties) {
    assert(parties > 0);
  }

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  auto arriveAndWait() noexcept {
    struct Awaiter {
      Barrier* b;
      bool await_ready() const noexcept { return b->parties_ == 1; }
      bool await_suspend(std::coroutine_handle<> h) const {
        if (b->waiters_.size() + 1 == b->parties_) {
          // Last arrival releases everyone; it does not suspend.
          for (auto w : b->waiters_) b->sim_->scheduleAt(b->sim_->now(), w);
          b->waiters_.clear();
          ++b->generation_;
          return false;
        }
        b->waiters_.push_back(h);
        return true;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  std::uint64_t generation() const noexcept { return generation_; }

 private:
  Simulation* sim_;
  std::size_t parties_;
  std::uint64_t generation_ = 0;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Runs tasks concurrently and completes when all finish. If any task fails,
/// the first failure (in completion order) is rethrown after all complete.
Task<void> whenAll(Simulation& sim, std::vector<Task<void>> tasks);

}  // namespace daosim::sim
