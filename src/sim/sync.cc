#include "sim/sync.h"

#include <exception>
#include <utility>

namespace daosim::sim {

Task<void> whenAll(Simulation& sim, std::vector<Task<void>> tasks) {
  std::vector<ProcHandle> procs;
  procs.reserve(tasks.size());
  for (auto& t : tasks) procs.push_back(sim.spawn(std::move(t)));
  tasks.clear();

  std::exception_ptr first_error;
  for (auto& p : procs) {
    try {
      co_await p.join();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace daosim::sim
