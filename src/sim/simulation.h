// Discrete-event simulation kernel.
//
// The Simulation owns a time-ordered event queue of coroutine resumptions.
// Simulated activities are coroutines (sim::Task) which suspend on awaitables
// (delay, synchronization primitives, queueing stations) and are resumed by
// the kernel at the appropriate simulated instant. Events at equal times are
// processed in FIFO scheduling order, which makes runs fully deterministic.
//
// Hot-path notes: coroutine frames and spawn join-states come from the
// per-thread FramePool (sim/pool.h), the event queue is the two-level
// structure in sim/event_queue.h, and independent simulations (sweep points,
// repetitions) can execute concurrently via sim::ParallelRunner — a
// Simulation itself is strictly single-threaded.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <exception>
#include <utility>
#include <vector>

#include "sim/event_queue.h"
#include "sim/pool.h"
#include "sim/rng.h"
#include "sim/task.h"
#include "sim/time.h"

namespace daosim::obs {
class Observer;
class Telemetry;
}  // namespace daosim::obs

namespace daosim::sim {

class Simulation;

namespace detail {

/// Shared completion state of a spawned process. Intrusively refcounted and
/// pool-allocated so spawning is allocation-free in steady state; a
/// Simulation and all its handles live on one thread, so the count is plain.
struct JoinState {
  explicit JoinState(Simulation& s) : sim(&s) {}

  static void* operator new(std::size_t n) { return FramePool::allocate(n); }
  static void operator delete(void* p) noexcept { FramePool::deallocate(p); }

  Simulation* sim;
  std::uint32_t refs = 1;  // the creating JoinRef adopts this count
  bool done = false;
  std::exception_ptr error;
  std::vector<std::coroutine_handle<>> waiters;

  void complete(std::exception_ptr e);
};

/// Intrusive reference to a JoinState.
class JoinRef {
 public:
  JoinRef() noexcept = default;
  /// Adopts `s` (which must carry one reference for this JoinRef).
  explicit JoinRef(JoinState* s) noexcept : s_(s) {}
  JoinRef(const JoinRef& o) noexcept : s_(o.s_) {
    if (s_ != nullptr) ++s_->refs;
  }
  JoinRef(JoinRef&& o) noexcept : s_(std::exchange(o.s_, nullptr)) {}
  JoinRef& operator=(JoinRef o) noexcept {
    std::swap(s_, o.s_);
    return *this;
  }
  ~JoinRef() { reset(); }

  void reset() noexcept {
    if (s_ != nullptr && --s_->refs == 0) delete s_;
    s_ = nullptr;
  }

  JoinState* get() const noexcept { return s_; }
  JoinState* operator->() const noexcept { return s_; }
  explicit operator bool() const noexcept { return s_ != nullptr; }

 private:
  JoinState* s_ = nullptr;
};

/// Self-starting, self-destroying root coroutine wrapping a spawned task.
struct Root {
  struct promise_type {
    static void* operator new(std::size_t n) { return FramePool::allocate(n); }
    static void operator delete(void* p) noexcept {
      FramePool::deallocate(p);
    }

    Root get_return_object() noexcept { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { std::terminate(); }
  };
};

}  // namespace detail

/// Handle to a spawned simulated process; join() awaits its completion and
/// rethrows any exception the process terminated with.
class ProcHandle {
 public:
  ProcHandle() = default;
  explicit ProcHandle(detail::JoinRef s) : state_(std::move(s)) {}

  bool valid() const noexcept { return static_cast<bool>(state_); }
  bool done() const noexcept { return state_ && state_->done; }
  bool failed() const noexcept {
    return state_ && state_->done && state_->error;
  }
  /// The exception a completed process failed with (null if none).
  std::exception_ptr error() const noexcept {
    return state_ ? state_->error : nullptr;
  }

  /// Awaitable that completes when the process finishes.
  auto join() const noexcept {
    struct Awaiter {
      detail::JoinState* state;

      bool await_ready() const noexcept { return state->done; }
      void await_suspend(std::coroutine_handle<> h) const {
        state->waiters.push_back(h);
      }
      void await_resume() const {
        if (state->error) std::rethrow_exception(state->error);
      }
    };
    assert(state_ && "joining an empty process handle");
    return Awaiter{state_.get()};
  }

 private:
  detail::JoinRef state_;
};

class Simulation {
 public:
  /// nextEventTime() sentinel for an empty queue; larger than any real time.
  static constexpr Time kNever = ~Time{0};

  explicit Simulation(std::uint64_t seed = 1) : rng_(seed) {}

  // Neither copyable nor movable: queue stations, nodes and engines hold
  // stable pointers to their Simulation.
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;
  Simulation(Simulation&&) = delete;
  Simulation& operator=(Simulation&&) = delete;

  Time now() const noexcept { return now_; }
  Rng& rng() noexcept { return rng_; }

  /// Schedules `h` to resume at absolute simulated time `t` (>= now). A
  /// past `t` is a bug in the caller; rather than silently corrupting the
  /// timeline in release builds (the assert is compiled out) it is clamped
  /// to now and counted — see pastScheduleClamps().
  void scheduleAt(Time t, std::coroutine_handle<> h) {
    assert(t >= now_ && "scheduleAt into the past");
    if (t < now_) {
      t = now_;
      ++past_clamps_;
    }
    queue_.push(now_, t, seq_++, h);
  }

  void scheduleAfter(Time d, std::coroutine_handle<> h) {
    scheduleAt(now_ + d, h);
  }

  /// Number of scheduleAt calls that targeted the past and were clamped to
  /// the current time (always 0 in a correct model).
  std::uint64_t pastScheduleClamps() const noexcept { return past_clamps_; }

  /// Awaitable suspending the current coroutine for `d` simulated time.
  auto delay(Time d) noexcept {
    struct Awaiter {
      Simulation* sim;
      Time d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const {
        sim->scheduleAfter(d, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, d};
  }

  /// Reschedules the current coroutine at the current time (fair yield).
  auto yield() noexcept { return delay(0); }

  /// Starts a detached simulated process. The process begins running
  /// immediately (until its first suspension point).
  ProcHandle spawn(Task<void> task);

  /// Runs until the event queue drains; returns the number of events
  /// processed. `max_events` guards against runaway simulations.
  std::size_t run(std::size_t max_events = ~std::size_t{0});

  /// Runs events with timestamps <= t, then sets now to t.
  std::size_t runUntil(Time t);

  /// Runs events with timestamps strictly below `end` and stops; unlike
  /// runUntil the clock is left at the last processed event, never advanced
  /// to `end`. This is the conservative-PDES execution primitive (see
  /// sim/shard.h): `end` is the shard's safe horizon for the current
  /// synchronization window, and an idle shard must not let its clock creep
  /// past its next real event. `max_events` guards against an intra-window
  /// livelock (an event chain that never advances time).
  std::size_t runWindow(Time end, std::size_t max_events = ~std::size_t{0});

  /// Timestamp of the earliest pending event, kNever when the queue is
  /// empty. Used by the shard scheduler to compute the global window floor.
  Time nextEventTime() const noexcept {
    return queue_.empty() ? kNever : queue_.nextTime();
  }

  bool empty() const noexcept { return queue_.empty(); }
  std::size_t pendingEvents() const noexcept { return queue_.size(); }
  std::size_t processedEvents() const noexcept { return processed_; }

  /// Observability sink; null (the default) disables all instrumentation.
  /// Every instrumentation site guards on this one pointer, so a run without
  /// an observer pays a single predictable branch per potential event.
  obs::Observer* observer() const noexcept { return observer_; }
  void setObserver(obs::Observer* o) noexcept { observer_ = o; }

  /// Telemetry sampler; null (the default) disables periodic sampling.
  /// Installed by obs::Telemetry::attach(), which supplies the first sample
  /// boundary. With no telemetry the kernel pays one integer compare per
  /// event (telemetry_due_ stays at kNever) and allocates nothing; push
  /// instrument sites guard on this pointer like observer sites do.
  obs::Telemetry* telemetry() const noexcept { return telemetry_; }
  void setTelemetry(obs::Telemetry* t, Time next_due) noexcept {
    telemetry_ = t;
    telemetry_due_ = t != nullptr ? next_due : kNever;
  }

 private:
  /// Cold path: snapshots the telemetry tree at every sample boundary the
  /// event at `t` is about to pass (out of line; see simulation.cc).
  void telemetrySample(Time t);
  static detail::Root runRoot(detail::JoinRef state, Task<void> task);

  EventQueue queue_;
  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::size_t processed_ = 0;
  std::uint64_t past_clamps_ = 0;
  Rng rng_;
  obs::Observer* observer_ = nullptr;
  obs::Telemetry* telemetry_ = nullptr;
  Time telemetry_due_ = kNever;
};

}  // namespace daosim::sim
