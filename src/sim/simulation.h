// Discrete-event simulation kernel.
//
// The Simulation owns a time-ordered event queue of coroutine resumptions.
// Simulated activities are coroutines (sim::Task) which suspend on awaitables
// (delay, synchronization primitives, queueing stations) and are resumed by
// the kernel at the appropriate simulated instant. Events at equal times are
// processed in FIFO scheduling order, which makes runs fully deterministic.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "sim/rng.h"
#include "sim/task.h"
#include "sim/time.h"

namespace daosim::obs {
class Observer;
}  // namespace daosim::obs

namespace daosim::sim {

class Simulation;

namespace detail {

/// Shared completion state of a spawned process.
struct JoinState {
  explicit JoinState(Simulation& s) : sim(&s) {}

  Simulation* sim;
  bool done = false;
  std::exception_ptr error;
  std::vector<std::coroutine_handle<>> waiters;

  void complete(std::exception_ptr e);
};

/// Self-starting, self-destroying root coroutine wrapping a spawned task.
struct Root {
  struct promise_type {
    Root get_return_object() noexcept { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { std::terminate(); }
  };
};

}  // namespace detail

/// Handle to a spawned simulated process; join() awaits its completion and
/// rethrows any exception the process terminated with.
class ProcHandle {
 public:
  ProcHandle() = default;
  explicit ProcHandle(std::shared_ptr<detail::JoinState> s)
      : state_(std::move(s)) {}

  bool valid() const noexcept { return static_cast<bool>(state_); }
  bool done() const noexcept { return state_ && state_->done; }
  bool failed() const noexcept {
    return state_ && state_->done && state_->error;
  }
  /// The exception a completed process failed with (null if none).
  std::exception_ptr error() const noexcept {
    return state_ ? state_->error : nullptr;
  }

  /// Awaitable that completes when the process finishes.
  auto join() const noexcept {
    struct Awaiter {
      detail::JoinState* state;

      bool await_ready() const noexcept { return state->done; }
      void await_suspend(std::coroutine_handle<> h) const {
        state->waiters.push_back(h);
      }
      void await_resume() const {
        if (state->error) std::rethrow_exception(state->error);
      }
    };
    assert(state_ && "joining an empty process handle");
    return Awaiter{state_.get()};
  }

 private:
  std::shared_ptr<detail::JoinState> state_;
};

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1) : rng_(seed) {}

  // Neither copyable nor movable: queue stations, nodes and engines hold
  // stable pointers to their Simulation.
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;
  Simulation(Simulation&&) = delete;
  Simulation& operator=(Simulation&&) = delete;

  Time now() const noexcept { return now_; }
  Rng& rng() noexcept { return rng_; }

  /// Schedules `h` to resume at absolute simulated time `t` (>= now).
  void scheduleAt(Time t, std::coroutine_handle<> h) {
    assert(t >= now_);
    queue_.push(Item{t, seq_++, h});
  }

  void scheduleAfter(Time d, std::coroutine_handle<> h) {
    scheduleAt(now_ + d, h);
  }

  /// Awaitable suspending the current coroutine for `d` simulated time.
  auto delay(Time d) noexcept {
    struct Awaiter {
      Simulation* sim;
      Time d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) const {
        sim->scheduleAfter(d, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, d};
  }

  /// Reschedules the current coroutine at the current time (fair yield).
  auto yield() noexcept { return delay(0); }

  /// Starts a detached simulated process. The process begins running
  /// immediately (until its first suspension point).
  ProcHandle spawn(Task<void> task);

  /// Runs until the event queue drains; returns the number of events
  /// processed. `max_events` guards against runaway simulations.
  std::size_t run(std::size_t max_events = ~std::size_t{0});

  /// Runs events with timestamps <= t, then sets now to t.
  std::size_t runUntil(Time t);

  bool empty() const noexcept { return queue_.empty(); }
  std::size_t pendingEvents() const noexcept { return queue_.size(); }
  std::size_t processedEvents() const noexcept { return processed_; }

  /// Observability sink; null (the default) disables all instrumentation.
  /// Every instrumentation site guards on this one pointer, so a run without
  /// an observer pays a single predictable branch per potential event.
  obs::Observer* observer() const noexcept { return observer_; }
  void setObserver(obs::Observer* o) noexcept { observer_ = o; }

 private:
  struct Item {
    Time t;
    std::uint64_t seq;
    std::coroutine_handle<> h;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const noexcept {
      return a.t > b.t || (a.t == b.t && a.seq > b.seq);
    }
  };

  static detail::Root runRoot(std::shared_ptr<detail::JoinState> state,
                              Task<void> task);

  std::priority_queue<Item, std::vector<Item>, Later> queue_;
  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::size_t processed_ = 0;
  Rng rng_;
  obs::Observer* observer_ = nullptr;
};

}  // namespace daosim::sim
