#include "sim/simulation.h"

#include <stdexcept>

#include "obs/telemetry.h"

namespace daosim::sim {

namespace detail {

void JoinState::complete(std::exception_ptr e) {
  done = true;
  error = std::move(e);
  // Resume joiners through the scheduler (never inline) so completion order
  // stays FIFO-deterministic and stacks stay shallow.
  for (auto h : waiters) sim->scheduleAt(sim->now(), h);
  waiters.clear();
}

}  // namespace detail

detail::Root Simulation::runRoot(detail::JoinRef state, Task<void> task) {
  std::exception_ptr error;
  try {
    co_await std::move(task);
  } catch (...) {
    error = std::current_exception();
  }
  state->complete(std::move(error));
}

ProcHandle Simulation::spawn(Task<void> task) {
  detail::JoinRef state(new detail::JoinState(*this));
  runRoot(state, std::move(task));  // the root frame holds its own reference
  return ProcHandle(std::move(state));
}

std::size_t Simulation::run(std::size_t max_events) {
  std::size_t n = 0;
  while (!queue_.empty()) {
    if (n >= max_events) {
      throw std::runtime_error(
          "Simulation::run: event budget exhausted (possible livelock)");
    }
    const EventQueue::Item e = queue_.pop();
    assert(e.t >= now_);
    // Sample the telemetry tree at every boundary this event steps over
    // (strictly below e.t: events at exactly the boundary run first, so a
    // sample at B reflects all state changes with timestamps <= B). With no
    // telemetry attached telemetry_due_ is kNever and this is one compare.
    if (e.t > telemetry_due_) [[unlikely]] telemetrySample(e.t);
    now_ = e.t;
    ++n;
    ++processed_;
    e.h.resume();
  }
  return n;
}

std::size_t Simulation::runUntil(Time t) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.nextTime() <= t) {
    const EventQueue::Item e = queue_.pop();
    if (e.t > telemetry_due_) [[unlikely]] telemetrySample(e.t);
    now_ = e.t;
    ++n;
    ++processed_;
    e.h.resume();
  }
  if (now_ < t) now_ = t;
  return n;
}

std::size_t Simulation::runWindow(Time end, std::size_t max_events) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.nextTime() < end) {
    if (n >= max_events) {
      throw std::runtime_error(
          "Simulation::runWindow: event budget exhausted inside one "
          "synchronization window (possible livelock)");
    }
    const EventQueue::Item e = queue_.pop();
    assert(e.t >= now_);
    if (e.t > telemetry_due_) [[unlikely]] telemetrySample(e.t);
    now_ = e.t;
    ++n;
    ++processed_;
    e.h.resume();
  }
  return n;
}

void Simulation::telemetrySample(Time t) {
  telemetry_due_ = telemetry_->sampleUpTo(t);
}

}  // namespace daosim::sim
