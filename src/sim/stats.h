// Small statistics helpers (Welford accumulator, summaries).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace daosim::sim {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class Welford {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::uint64_t count() const noexcept { return n_; }
  double sum() const noexcept { return sum_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept {
    return n_ ? min_ : 0.0;
  }
  double max() const noexcept {
    return n_ ? max_ : 0.0;
  }

  void reset() noexcept { *this = Welford{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace daosim::sim
