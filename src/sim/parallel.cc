#include "sim/parallel.h"

#include <cstdlib>

namespace daosim::sim {

int envSweepJobs() {
  int jobs = 0;
  if (const char* v = std::getenv("DAOSIM_JOBS")) {
    jobs = std::atoi(v);
  }
  if (jobs <= 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
  }
  return jobs > 0 ? jobs : 1;
}

int envSimJobs() {
  int jobs = 0;
  if (const char* v = std::getenv("DAOSIM_SIM_JOBS")) {
    jobs = std::atoi(v);
  }
  return jobs > 0 ? jobs : 1;
}

ParallelRunner::ParallelRunner(int jobs) : jobs_(jobs > 0 ? jobs : 1) {
  if (jobs_ > 1) {
    workers_.reserve(static_cast<std::size_t>(jobs_));
    for (int i = 0; i < jobs_; ++i) {
      workers_.emplace_back([this] { workerLoop(); });
    }
  }
}

ParallelRunner::~ParallelRunner() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ParallelRunner::noteFailure(std::exception_ptr e) {
  std::lock_guard<std::mutex> lock(err_mu_);
  if (first_error_ == nullptr) first_error_ = std::move(e);
  failed_.store(true, std::memory_order_release);
}

void ParallelRunner::enqueue(std::function<void()> job) {
  if (jobs_ <= 1) {
    job();  // serial mode: run inline, deterministically, on this thread
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ParallelRunner::workerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();  // packaged_task captures any exception into its future
  }
}

}  // namespace daosim::sim
