// Two-level event queue for the discrete-event kernel.
//
// The kernel's ordering contract is exact: events pop in (time, seq) order,
// seq being the global push counter, so FIFO-within-timestamp determinism is
// preserved bit for bit. The old implementation was a single binary heap;
// this one splits events by temporal distance so the common cases are O(1):
//
//   * now-FIFO   — events scheduled at exactly the current time (semaphore
//                  hand-offs, barrier releases, join wake-ups, yields). Seq
//                  order equals insertion order, so a flat FIFO suffices.
//   * current window heap — events inside the bucket window that contains
//                  the present; a small binary heap over (time, seq).
//   * near ring  — kBuckets FIFO buckets of kWidth ns each covering the near
//                  future; push is an unordered O(1) append, and a bucket is
//                  heapified only when the kernel reaches its window.
//   * far heap   — everything beyond the ring horizon. Sparse or very long
//                  timers fall back here, giving graceful priority-queue
//                  behavior when timestamps are too spread for the ring.
//
// Ordering proof sketch: all stored events satisfy t >= now (the kernel
// never schedules into the past). Events with t == now live either in the
// now-FIFO or — when they were pushed before time advanced to t — in the
// current window heap; pop takes the (t, seq) minimum of those two fronts.
// Ring buckets cover windows strictly after the current one and the far heap
// holds only times at or beyond the ring horizon (advance() re-distributes
// far events whenever the horizon moves), so inter-level order is total.
//
// Adaptive single-window bypass: when every stored event lives in the
// current window heap (now-FIFO drained, ring and far heap empty), the
// queue behaves exactly like a bare binary heap, and the level checks on
// push/pop are pure overhead — the dense-timer regression in
// BENCH_kernel.json (events_per_sec/64). `bypass_` caches that state:
// while set, push appends straight to the window heap and pop takes its
// front with no FIFO or advance() checks, re-anchoring the window at each
// popped timestamp so the fast path tracks the clock indefinitely. The
// flag drops on the first event that leaves the single-window world (a
// t == now push, an out-of-window push) and is re-armed on the slow pop
// path whenever the other levels are observed empty again, so mixed
// workloads pay one predictable branch and dense-timer workloads get the
// bare heap back.
#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <coroutine>
#include <cstdint>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace daosim::sim {

class EventQueue {
 public:
  /// A scheduled coroutine resumption.
  struct Item {
    Time t = 0;
    std::uint64_t seq = 0;
    std::coroutine_handle<> h;
  };

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }

  /// Pushes an event; `now` is the kernel's current time and `t >= now`,
  /// `seq` strictly increasing across pushes.
  void push(Time now, Time t, std::uint64_t seq, std::coroutine_handle<> h) {
    assert(t >= now);
    ++size_;
    if (bypass_) {
      if (t != now && t - win_lo_ < kWidth) [[likely]] {
        cur_.push_back(Item{t, seq, h});
        std::push_heap(cur_.begin(), cur_.end(), After{});
        return;
      }
      bypass_ = false;
    }
    if (t == now) {
      assert(fifoEmpty() || fifo_time_ == now);
      if (fifoEmpty()) {
        now_fifo_.clear();
        fifo_head_ = 0;
      }
      fifo_time_ = now;
      now_fifo_.push_back(Item{t, seq, h});
      return;
    }
    place(Item{t, seq, h});
  }

  /// Pops the (time, seq)-minimum event. Queue must be non-empty.
  Item pop() {
    assert(size_ > 0);
    if (bypass_) [[likely]] {
      assert(!cur_.empty());
      std::pop_heap(cur_.begin(), cur_.end(), After{});
      const Item e = cur_.back();
      cur_.pop_back();
      --size_;
      // Slide the window with the clock so in-window pushes keep taking the
      // fast path. Remaining heap events all satisfy t >= e.t and
      // t < old win_lo_ + kWidth <= new win_lo_ + kWidth, so re-anchoring
      // the (bucket-aligned) window at e.t preserves containment and the
      // slow path can take over at any moment without redistribution.
      win_lo_ = e.t / kWidth * kWidth;
      return e;
    }
    if (fifoEmpty() && cur_.empty()) advance();
    Item e;
    const bool take_fifo =
        !fifoEmpty() &&
        (cur_.empty() || After{}(cur_.front(), now_fifo_[fifo_head_]));
    if (take_fifo) {
      e = now_fifo_[fifo_head_];
      ++fifo_head_;
    } else {
      std::pop_heap(cur_.begin(), cur_.end(), After{});
      e = cur_.back();
      cur_.pop_back();
    }
    --size_;
    if (fifoEmpty() && ring_count_ == 0 && far_.empty()) bypass_ = true;
    return e;
  }

  /// Timestamp of the next event to pop. Queue must be non-empty.
  Time nextTime() const {
    assert(size_ > 0);
    if (!fifoEmpty()) return fifo_time_;  // minimal: all others >= now
    if (!cur_.empty()) return cur_.front().t;
    if (ring_count_ > 0) {
      const auto& b = ring_[nextSlot(slotOf(win_lo_))];
      Time t = b.front().t;
      for (const Item& e : b) {
        if (e.t < t) t = e.t;
      }
      return t;
    }
    return far_.top().t;
  }

 private:
  // 64 Ki-ns buckets, 512 of them: sub-microsecond timers (semaphore waits,
  // NIC transfers) almost never cross a window edge, and the ring still
  // covers ~33 ms of future — device service times and think times included.
  // Coarser timers overflow to the far heap.
  static constexpr Time kWidth = 65536;
  static constexpr std::size_t kBuckets = 512;
  static constexpr Time kHorizon = kWidth * static_cast<Time>(kBuckets);
  static constexpr std::size_t kWords = kBuckets / 64;

  /// "a comes after b": heap comparator yielding a (time, seq) min-front.
  struct After {
    bool operator()(const Item& a, const Item& b) const noexcept {
      return a.t > b.t || (a.t == b.t && a.seq > b.seq);
    }
  };

  static std::size_t slotOf(Time t) noexcept {
    return static_cast<std::size_t>(t / kWidth) % kBuckets;
  }

  /// Next populated ring slot strictly after `s0`, circularly. Requires
  /// ring_count_ > 0; a couple of word scans thanks to the occupancy bitmap.
  std::size_t nextSlot(std::size_t s0) const noexcept {
    std::size_t s = (s0 + 1) % kBuckets;
    const std::size_t w0 = s >> 6;
    if (const std::uint64_t word = bits_[w0] >> (s & 63); word != 0) {
      return s + static_cast<std::size_t>(std::countr_zero(word));
    }
    for (std::size_t k = 1; k <= kWords; ++k) {
      const std::size_t w = (w0 + k) % kWords;
      if (bits_[w] != 0) {
        return (w << 6) + static_cast<std::size_t>(std::countr_zero(bits_[w]));
      }
    }
    assert(false && "ring_count_ > 0 but occupancy bitmap empty");
    return s0;
  }

  /// Files a future (t > now) event into window heap, ring, or far heap.
  void place(Item e) {
    assert(e.t >= win_lo_);
    if (e.t < win_lo_ + kWidth) {
      cur_.push_back(e);
      std::push_heap(cur_.begin(), cur_.end(), After{});
    } else if (e.t - win_lo_ < kHorizon) {
      const std::size_t s = slotOf(e.t);
      ring_[s].push_back(e);
      bits_[s >> 6] |= 1ULL << (s & 63);
      ++ring_count_;
    } else {
      far_.push(e);
    }
  }

  /// Moves the current window forward to the next populated bucket (or to
  /// the far heap's front when the ring is empty), then pulls far events
  /// that the new horizon now covers back into the ring.
  void advance() {
    if (ring_count_ > 0) {
      const std::size_t s0 = slotOf(win_lo_);
      const std::size_t s = nextSlot(s0);
      const std::size_t d = (s + kBuckets - s0) % kBuckets;
      assert(d > 0);
      win_lo_ += static_cast<Time>(d) * kWidth;
      auto& b = ring_[s];
      assert(!b.empty());
      cur_.swap(b);
      bits_[s >> 6] &= ~(1ULL << (s & 63));
      ring_count_ -= cur_.size();
      std::make_heap(cur_.begin(), cur_.end(), After{});
      drainFar();
      return;
    }
    assert(!far_.empty());
    win_lo_ = (far_.top().t / kWidth) * kWidth;
    drainFar();  // guaranteed to move far_.top() into the window heap
  }

  void drainFar() {
    while (!far_.empty() && far_.top().t - win_lo_ < kHorizon) {
      place(far_.top());
      far_.pop();
    }
  }

  bool fifoEmpty() const noexcept { return fifo_head_ == now_fifo_.size(); }

  // Events at exactly the current time: a vector drained via a head index
  // (cheaper empty-check than a deque, and the storage is reused once
  // drained since the FIFO refills from index zero).
  std::vector<Item> now_fifo_;
  std::size_t fifo_head_ = 0;
  Time fifo_time_ = 0;
  std::vector<Item> cur_;  // (time, seq) min-heap over [win_lo_, win_lo_+W)
  Time win_lo_ = 0;
  std::vector<Item> ring_[kBuckets];
  std::uint64_t bits_[kWords] = {};  // per-slot non-empty occupancy bitmap
  std::size_t ring_count_ = 0;
  std::priority_queue<Item, std::vector<Item>, After> far_;
  std::size_t size_ = 0;
  // True iff every stored event is in cur_ (see "Adaptive single-window
  // bypass" above); push/pop then skip the other levels entirely.
  bool bypass_ = true;

};

}  // namespace daosim::sim
