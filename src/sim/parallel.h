// ParallelRunner: executes independent simulations across a worker pool.
//
// A sim::Simulation is strictly single-threaded, but a sweep is many
// simulations — one per (sweep point × repetition), each self-contained and
// seed-deterministic. ParallelRunner runs such jobs across std::thread
// workers. Determinism contract: a job's result depends only on its inputs
// (testbed options + seed), never on scheduling, so serial (jobs == 1) and
// parallel executions produce bitwise-identical results as long as callers
// aggregate in submission order — which submit()/map() make natural.
//
// Failure contract: the first job that throws poisons the pool — jobs that
// have not started yet are skipped and their futures carry JobCancelled
// instead (fail fast: a thousand-cell sweep stops within one job of the
// first failure rather than running to completion). Jobs already running
// finish normally. map() translates this for you, rethrowing the first real
// error in submission-index order; callers holding raw futures can fall
// back to firstError().
//
// Two distinct parallelism knobs exist in the simulator; this one is
// *sweep-level* (whole independent simulations). Intra-run parallelism —
// sharding one simulation's event queue across threads — is sim::ShardGroup
// (sim/shard.h), selected by --sim-jobs / DAOSIM_SIM_JOBS.
//
// DAOSIM_JOBS selects the sweep worker count (default: hardware
// concurrency; 1 restores fully serial, inline execution with no threads).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

namespace daosim::sim {

/// DAOSIM_JOBS (sweep cells), clamped to >= 1; unset or 0 means hardware
/// concurrency.
int envSweepJobs();

/// DAOSIM_SIM_JOBS (event-queue shards within one run), clamped to >= 1;
/// unset or 0 means 1 — the serial kernel, which stays the default.
int envSimJobs();

/// Carried by the futures of jobs skipped after an earlier job failed; the
/// originating error is ParallelRunner::firstError().
class JobCancelled : public std::runtime_error {
 public:
  JobCancelled()
      : std::runtime_error("job skipped: an earlier pool job failed") {}
};

class ParallelRunner {
 public:
  explicit ParallelRunner(int jobs = envSweepJobs());

  /// Drains the queue and joins the workers.
  ~ParallelRunner();

  ParallelRunner(const ParallelRunner&) = delete;
  ParallelRunner& operator=(const ParallelRunner&) = delete;

  int jobs() const noexcept { return jobs_; }

  /// The first failure (in wall-clock order) any job reported; null while
  /// all jobs have succeeded. Stable once set.
  std::exception_ptr firstError() const {
    std::lock_guard<std::mutex> lock(err_mu_);
    return first_error_;
  }

  /// Enqueues `fn` and returns its future. With jobs() == 1 the job runs
  /// inline before returning (exactly the serial behavior, no threads).
  template <typename Fn>
  auto submit(Fn fn) -> std::future<std::invoke_result_t<Fn&>> {
    using R = std::invoke_result_t<Fn&>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        [this, fn = std::move(fn)]() mutable -> R {
          if (failed_.load(std::memory_order_acquire)) throw JobCancelled();
          try {
            return fn();
          } catch (...) {
            noteFailure(std::current_exception());
            throw;
          }
        });
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

  /// Runs fn(0) .. fn(n-1) across the pool and returns the results in index
  /// order (so aggregation order never depends on completion order). On
  /// failure, rethrows the first real (non-cancellation) error by index.
  template <typename Fn>
  auto map(std::size_t n, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
    using R = std::invoke_result_t<Fn&, std::size_t>;
    std::vector<std::future<R>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      futures.push_back(submit([&fn, i] { return fn(i); }));
    }
    std::vector<R> out;
    out.reserve(n);
    std::exception_ptr error;
    for (auto& f : futures) {
      try {
        out.push_back(f.get());
      } catch (const JobCancelled&) {
        // A skipped job: the real error lives in another future (or, if
        // that future is also being skipped over, in first_error_).
      } catch (...) {
        if (error == nullptr) error = std::current_exception();
      }
    }
    if (error == nullptr && out.size() != n) error = firstError();
    if (error != nullptr) std::rethrow_exception(error);
    if (out.size() != n) throw JobCancelled();  // defensive: never silently short
    return out;
  }

 private:
  void enqueue(std::function<void()> job);
  void workerLoop();
  void noteFailure(std::exception_ptr e);

  int jobs_;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::atomic<bool> failed_{false};
  mutable std::mutex err_mu_;
  std::exception_ptr first_error_;
};

}  // namespace daosim::sim
