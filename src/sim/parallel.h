// ParallelRunner: executes independent simulations across a worker pool.
//
// A sim::Simulation is strictly single-threaded, but a sweep is many
// simulations — one per (sweep point × repetition), each self-contained and
// seed-deterministic. ParallelRunner runs such jobs across std::thread
// workers. Determinism contract: a job's result depends only on its inputs
// (testbed options + seed), never on scheduling, so serial (jobs == 1) and
// parallel executions produce bitwise-identical results as long as callers
// aggregate in submission order — which submit()/map() make natural.
//
// DAOSIM_JOBS selects the worker count (default: hardware concurrency;
// 1 restores fully serial, inline execution with no threads at all).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace daosim::sim {

/// DAOSIM_JOBS, clamped to >= 1; unset or 0 means hardware concurrency.
int envJobs();

class ParallelRunner {
 public:
  explicit ParallelRunner(int jobs = envJobs());

  /// Drains the queue and joins the workers.
  ~ParallelRunner();

  ParallelRunner(const ParallelRunner&) = delete;
  ParallelRunner& operator=(const ParallelRunner&) = delete;

  int jobs() const noexcept { return jobs_; }

  /// Enqueues `fn` and returns its future. With jobs() == 1 the job runs
  /// inline before returning (exactly the serial behavior, no threads).
  template <typename Fn>
  auto submit(Fn fn) -> std::future<std::invoke_result_t<Fn&>> {
    using R = std::invoke_result_t<Fn&>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

  /// Runs fn(0) .. fn(n-1) across the pool and returns the results in index
  /// order (so aggregation order never depends on completion order).
  template <typename Fn>
  auto map(std::size_t n, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
    using R = std::invoke_result_t<Fn&, std::size_t>;
    std::vector<std::future<R>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      futures.push_back(submit([&fn, i] { return fn(i); }));
    }
    std::vector<R> out;
    out.reserve(n);
    for (auto& f : futures) out.push_back(f.get());
    return out;
  }

 private:
  void enqueue(std::function<void()> job);
  void workerLoop();

  int jobs_;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace daosim::sim
