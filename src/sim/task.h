// Lazy coroutine task type used by every simulated activity.
//
// Task<T> is a single-awaiter, lazily-started coroutine: creating one does
// not run any code; awaiting it transfers control into the child coroutine
// (symmetric transfer, so arbitrarily deep await chains use O(1) stack), and
// completion transfers control back to the awaiter. Exceptions propagate to
// the awaiter at `co_await`.
//
// Detached execution (simulated processes) is provided by
// Simulation::spawn(), see simulation.h.
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <type_traits>
#include <utility>

#include "sim/pool.h"

namespace daosim::sim {

template <typename T>
class Task;

namespace detail {

class TaskPromiseBase {
 public:
  // Coroutine frames are allocated through the per-thread FramePool, so a
  // task creation in steady state touches no global allocator.
  static void* operator new(std::size_t n) { return FramePool::allocate(n); }
  static void operator delete(void* p) noexcept { FramePool::deallocate(p); }

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }

    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto continuation = h.promise().continuation_;
      return continuation ? continuation : std::noop_coroutine();
    }

    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }

  void setContinuation(std::coroutine_handle<> c) noexcept {
    continuation_ = c;
  }

 private:
  std::coroutine_handle<> continuation_;
};

template <typename T>
class TaskPromise final : public TaskPromiseBase {
 public:
  Task<T> get_return_object() noexcept;

  void return_value(T value) noexcept(
      std::is_nothrow_move_constructible_v<T>) {
    value_.emplace(std::move(value));
  }

  void unhandled_exception() noexcept { error_ = std::current_exception(); }

  T takeResult() {
    if (error_) std::rethrow_exception(error_);
    assert(value_.has_value() && "task completed without a value");
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  std::exception_ptr error_;
};

template <>
class TaskPromise<void> final : public TaskPromiseBase {
 public:
  Task<void> get_return_object() noexcept;

  void return_void() noexcept {}
  void unhandled_exception() noexcept { error_ = std::current_exception(); }

  void takeResult() {
    if (error_) std::rethrow_exception(error_);
  }

 private:
  std::exception_ptr error_;
};

}  // namespace detail

/// A lazily-started coroutine returning T. Move-only; owns the frame.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::TaskPromise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() noexcept = default;
  explicit Task(Handle h) noexcept : handle_(h) {}

  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }

  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;

  ~Task() { destroy(); }

  bool valid() const noexcept { return static_cast<bool>(handle_); }

  /// Awaiting starts the task and resumes the awaiter on completion.
  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle handle;

      bool await_ready() const noexcept { return false; }

      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> awaiting) noexcept {
        handle.promise().setContinuation(awaiting);
        return handle;  // symmetric transfer into the child
      }

      T await_resume() { return handle.promise().takeResult(); }
    };
    assert(handle_ && "awaiting an empty task");
    return Awaiter{handle_};
  }

  /// Releases ownership of the coroutine frame (used by Simulation::spawn).
  Handle release() noexcept { return std::exchange(handle_, {}); }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_;
};

namespace detail {

template <typename T>
Task<T> TaskPromise<T>::get_return_object() noexcept {
  return Task<T>(std::coroutine_handle<TaskPromise<T>>::from_promise(*this));
}

inline Task<void> TaskPromise<void>::get_return_object() noexcept {
  return Task<void>(
      std::coroutine_handle<TaskPromise<void>>::from_promise(*this));
}

}  // namespace detail

}  // namespace daosim::sim
