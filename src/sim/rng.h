// Deterministic pseudo-random number generation for the simulator.
//
// xoshiro256++ seeded via splitmix64. All stochastic behaviour in the
// simulator derives from one of these generators so that every run is
// reproducible from a single seed.
#pragma once

#include <cassert>
#include <cstdint>

namespace daosim::sim {

/// splitmix64 step; also used as a general-purpose 64-bit mixer/hash.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines two 64-bit values into one hash (order-sensitive).
constexpr std::uint64_t hashCombine(std::uint64_t a, std::uint64_t b) noexcept {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x6a09e667f3bcc908ULL) noexcept {
    reseed(seed);
  }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x = mix64(x);
      s = x;
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double real01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) noexcept {
    assert(lo <= hi);
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) return (*this)();  // full range
    return lo + (*this)() % span;
  }

  /// Exponentially distributed value with the given mean (mean==0 -> 0).
  double exponential(double mean) noexcept;

  /// Uniform double in [lo, hi).
  double uniformReal(double lo, double hi) noexcept {
    return lo + (hi - lo) * real01();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace daosim::sim
