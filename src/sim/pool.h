// Per-thread pooled allocator for coroutine frames and spawn join-states.
//
// Every simulated activity is a coroutine, so the kernel's hot path used to
// pay one global operator new/delete per task frame and per spawned process.
// FramePool recycles those blocks through per-thread, size-bucketed free
// lists: after warm-up, creating a task or spawning a process performs no
// global allocation at all (see FramePool::threadStats in tests).
//
// Thread model: the pool is thread_local. A Simulation and everything it
// spawns live on a single thread (sim::ParallelRunner runs each simulation
// to completion on one worker), so blocks never migrate between pools in
// practice; if a block is freed on a different thread than it was allocated
// on, it simply joins that thread's free list, which is benign.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>

namespace daosim::sim::detail {

class FramePool {
 public:
  struct Stats {
    std::uint64_t allocs = 0;    // total allocate() calls
    std::uint64_t reuses = 0;    // served from a free list
    std::uint64_t fresh = 0;     // new bucketed block from ::operator new
    std::uint64_t oversize = 0;  // larger than the largest bucket
  };

  static void* allocate(std::size_t n) { return local().alloc(n); }
  static void deallocate(void* p) noexcept { local().free(p); }

  /// Allocation counters for the calling thread (tests assert steady-state
  /// reuse through these).
  static const Stats& threadStats() noexcept { return local().stats_; }

  /// Returns all cached blocks on the calling thread to the system.
  static void trimThreadCache() noexcept { local().trim(); }

  ~FramePool() { trim(); }

 private:
  // Block layout: [16-byte header][payload]. The header stores the bucket
  // index (or kOversize) and doubles as the free-list link; 16 bytes keeps
  // the payload at the default operator-new alignment coroutine frames
  // require.
  static constexpr std::size_t kHeader = 16;
  static constexpr std::size_t kGranularity = 64;
  static constexpr std::size_t kBucketCount = 64;  // payloads up to 4 KiB
  static constexpr std::uint64_t kOversize = ~std::uint64_t{0};

  struct FreeNode {
    FreeNode* next;
  };

  static FramePool& local() noexcept {
    thread_local FramePool pool;
    return pool;
  }

  void* alloc(std::size_t n) {
    ++stats_.allocs;
    if (n == 0) n = 1;
    const std::size_t idx = (n - 1) / kGranularity;
    if (idx >= kBucketCount) {
      ++stats_.oversize;
      return stamp(::operator new(kHeader + n), kOversize);
    }
    if (FreeNode* node = free_[idx]) {
      free_[idx] = node->next;
      ++stats_.reuses;
      return stamp(node, idx);
    }
    ++stats_.fresh;
    return stamp(::operator new(kHeader + (idx + 1) * kGranularity), idx);
  }

  void free(void* p) noexcept {
    if (p == nullptr) return;
    auto* head =
        reinterpret_cast<std::uint64_t*>(static_cast<char*>(p) - kHeader);
    const std::uint64_t idx = head[0];
    if (idx == kOversize) {
      ::operator delete(head);
      return;
    }
    auto* node = reinterpret_cast<FreeNode*>(head);
    node->next = free_[idx];
    free_[idx] = node;
  }

  void trim() noexcept {
    for (auto& list : free_) {
      while (list != nullptr) {
        FreeNode* next = list->next;
        ::operator delete(list);
        list = next;
      }
    }
  }

  static void* stamp(void* block, std::uint64_t idx) noexcept {
    auto* head = static_cast<std::uint64_t*>(block);
    head[0] = idx;
    return static_cast<char*>(block) + kHeader;
  }

  FreeNode* free_[kBucketCount] = {};
  Stats stats_;
};

}  // namespace daosim::sim::detail
