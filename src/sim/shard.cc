#include "sim/shard.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <stdexcept>

#include "sim/rng.h"

namespace daosim::sim {

namespace {
thread_local int t_current_shard = -1;

std::uint64_t wallNow() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

int currentShard() noexcept { return t_current_shard; }

ShardBarrier::ShardBarrier(ShardGroup& group, std::size_t parties)
    : group_(&group), parties_(parties) {
  assert(parties > 0);
  lanes_.resize(static_cast<std::size_t>(group.shards()));
  group.barriers_.push_back(this);
}

void ShardBarrier::arrive(int shard, std::coroutine_handle<> h) {
  auto& lane = lanes_[static_cast<std::size_t>(shard)];
  lane.push_back(Arrival{group_->shard(shard).now(), h});
}

std::size_t ShardBarrier::arrived() const noexcept {
  std::size_t n = 0;
  for (const auto& lane : lanes_) n += lane.size();
  return n;
}

ShardGroup::ShardGroup(const Options& opts)
    : lookahead_(opts.lookahead), max_window_events_(opts.max_window_events) {
  if (opts.shards < 1) {
    throw std::invalid_argument("ShardGroup: shards must be >= 1");
  }
  if (opts.shards > 1 && opts.lookahead == 0) {
    throw std::invalid_argument(
        "ShardGroup: zero lookahead cannot synchronize more than one shard");
  }
  const auto n = static_cast<std::size_t>(opts.shards);
  sims_.reserve(n);
  boxes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Per-shard RNG lane: shard i's kernel PRNG stream is a deterministic
    // function of (seed, i) and never depends on the other shards.
    sims_.push_back(
        std::make_unique<Simulation>(hashCombine(opts.seed, 0xdaa5u + i)));
    boxes_.push_back(std::make_unique<Mailbox>());
  }
  post_seq_.assign(n, std::vector<std::uint64_t>(n, 0));
  errors_.assign(n, nullptr);
  stats_.shards = opts.shards;
  stats_.lookahead = lookahead_;
  stats_.shard_events.assign(n, 0);
  stats_.shard_busy_ns.assign(n, 0);
  stats_.shard_wait_ns.assign(n, 0);
  if (opts.shards > 1) {
    workers_.reserve(n);
    for (int i = 0; i < opts.shards; ++i) {
      workers_.emplace_back([this, i] { workerLoop(i); });
    }
  }
}

ShardGroup::~ShardGroup() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ShardGroup::post(int src, int dst, Time t, std::uint64_t key,
                      std::coroutine_handle<> h) {
  assert(t >= window_end_ &&
         "mailbox post inside the current window: the migration "
         "latency is below the group's lookahead");
  auto& seq = post_seq_[static_cast<std::size_t>(src)]
                       [static_cast<std::size_t>(dst)];
  Mailbox& box = *boxes_[static_cast<std::size_t>(dst)];
  std::lock_guard<std::mutex> lock(box.mu);
  box.items.push_back(MailboxEntry{t, key, src, seq++, h});
}

void ShardGroup::runShardWindow(int shard) {
  auto& s = *sims_[static_cast<std::size_t>(shard)];
  const int prev = t_current_shard;
  t_current_shard = shard;
  // Wall-clock busy time: written only by this shard's executing thread; the
  // window barrier (pending_ under mu_) orders it against coordinator reads,
  // the same argument shard_events relies on.
  const std::uint64_t t0 = wallNow();
  try {
    stats_.shard_events[static_cast<std::size_t>(shard)] +=
        s.runWindow(window_end_, max_window_events_);
  } catch (...) {
    errors_[static_cast<std::size_t>(shard)] = std::current_exception();
  }
  stats_.shard_busy_ns[static_cast<std::size_t>(shard)] += wallNow() - t0;
  t_current_shard = prev;
}

void ShardGroup::workerLoop(int shard) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      const std::uint64_t w0 = wallNow();
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;  // teardown idle is not barrier wait
      seen = generation_;
      // Recorded under mu_, so the coordinator's post-run read is ordered.
      stats_.shard_wait_ns[static_cast<std::size_t>(shard)] += wallNow() - w0;
    }
    runShardWindow(shard);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) cv_done_.notify_one();
    }
  }
}

void ShardGroup::runOneWindow(Time window_end) {
  ++stats_.windows;
  window_end_ = window_end;
  if (workers_.empty()) {
    runShardWindow(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_ = shards();
    ++generation_;
  }
  cv_start_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [&] { return pending_ == 0; });
}

std::size_t ShardGroup::flushMailboxes() {
  std::size_t delivered = 0;
  for (int dst = 0; dst < shards(); ++dst) {
    Mailbox& box = *boxes_[static_cast<std::size_t>(dst)];
    std::vector<MailboxEntry> items;
    {
      std::lock_guard<std::mutex> lock(box.mu);
      items.swap(box.items);
    }
    if (items.empty()) continue;
    // (time, key, source shard, source post index): a total order
    // independent of thread scheduling, so the destination's (time, seq)
    // assignment — and with it everything downstream — is reproducible.
    // The caller-supplied key comes before the shard-dependent components
    // so that same-time deliveries resume in a shard-count-invariant order
    // (see the file comment in shard.h).
    std::sort(items.begin(), items.end(),
              [](const MailboxEntry& a, const MailboxEntry& b) {
                if (a.t != b.t) return a.t < b.t;
                if (a.key != b.key) return a.key < b.key;
                if (a.src != b.src) return a.src < b.src;
                return a.idx < b.idx;
              });
    Simulation& s = *sims_[static_cast<std::size_t>(dst)];
    for (const MailboxEntry& e : items) {
      assert(e.t >= s.now());
      s.scheduleAt(e.t, e.h);
    }
    delivered += items.size();
    ++stats_.mailbox_flushes;
    stats_.mailbox_entries += items.size();
    stats_.mailbox_bytes += items.size() * sizeof(MailboxEntry);
  }
  stats_.cross_posts += delivered;
  return delivered;
}

bool ShardGroup::resolveBarriers() {
  bool released = false;
  for (ShardBarrier* b : barriers_) {
    if (b->parties_ == 0 || b->arrived() < b->parties_) continue;
    assert(b->arrived() == b->parties_ && "barrier overshot its party count");
    Time release_at = 0;
    for (const auto& lane : b->lanes_) {
      for (const auto& a : lane) release_at = std::max(release_at, a.t);
    }
    // Concurrent non-barrier work (a fault injector, a background rebuild)
    // can run a shard's clock past the last arrival inside the same
    // window; releasing below any clock would schedule into the past. The
    // clamp uses the group-wide maximum clock — a property of the event
    // history, identical for every shard layout, unlike any single
    // shard's clock — and equals the last arrival exactly (the serial
    // Barrier's release time) whenever nothing outran the rendezvous.
    for (int i = 0; i < shards(); ++i) {
      if (shard(i).now() > release_at) {
        release_at = shard(i).now();
        ++stats_.late_releases;
      }
    }
    for (int i = 0; i < shards(); ++i) {
      auto& lane = b->lanes_[static_cast<std::size_t>(i)];
      for (const auto& a : lane) shard(i).scheduleAt(release_at, a.h);
      lane.clear();
    }
    ++b->generation_;
    ++stats_.barrier_releases;
    ++stats_.windows;  // the release round is a (degenerate) window
    released = true;
  }
  return released;
}

std::size_t ShardGroup::run() {
  for (;;) {
    // Deliver pending migrations before computing the horizon. This also
    // covers posts made before the first window: spawn() runs a process
    // eagerly until its first suspension, so a cross-shard send issued
    // with no prior delay lands in a mailbox before run() begins.
    flushMailboxes();
    // Resolve complete barriers at every window boundary, not just at
    // quiescence: once every party has arrived the release time is fully
    // determined, and waiting for the queues to drain would let unrelated
    // pending work — a fault-plan event scheduled for later — displace
    // the whole rendezvous past it (the workload must interleave with
    // such events exactly as it does on the serial kernel).
    if (resolveBarriers()) continue;
    Time gmin = Simulation::kNever;
    for (const auto& s : sims_) gmin = std::min(gmin, s->nextEventTime());
    if (gmin == Simulation::kNever) {
      std::size_t waiting = 0;
      for (const ShardBarrier* b : barriers_) waiting += b->arrived();
      if (waiting > 0) {
        throw std::runtime_error(
            "ShardGroup: quiescent with incomplete barrier arrivals "
            "(a participant exited or deadlocked)");
      }
      break;
    }
    // Events strictly below gmin + lookahead are safe: an effect emitted at
    // t >= gmin lands at t + lookahead >= the horizon, never inside it. An
    // event exactly at the horizon waits for the next round (it could tie
    // with an incoming migration). Saturating add; lookahead 0 (legal only
    // single-shard) degenerates to one unbounded window.
    const Time window_end =
        lookahead_ == 0 || gmin > Simulation::kNever - lookahead_
            ? Simulation::kNever
            : gmin + lookahead_;
    runOneWindow(window_end);
    for (auto& e : errors_) {
      if (e != nullptr) std::rethrow_exception(std::exchange(e, nullptr));
    }
  }
  stats_.events = 0;
  for (std::size_t n : stats_.shard_events) stats_.events += n;
  return stats_.events;
}

}  // namespace daosim::sim
