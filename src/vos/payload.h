// Value payloads stored by the simulated object stores.
//
// A Payload is either *real* (owns bytes, shared + sliced without copying)
// or *synthetic* (size + tag only). Real payloads make every store fully
// functional — tests write data and read it back. Synthetic payloads let the
// benchmark harness run paper-scale workloads (terabytes of simulated I/O)
// without materializing the bytes; all timing-relevant metadata (sizes,
// extents, keys) is kept either way.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace daosim::vos {

class Payload {
 public:
  /// Empty payload of size zero.
  Payload() = default;

  static Payload fromBytes(std::vector<std::byte> bytes) {
    Payload p;
    p.size_ = bytes.size();
    p.data_ = std::make_shared<const std::vector<std::byte>>(std::move(bytes));
    p.len_ = p.size_;
    return p;
  }

  static Payload fromString(std::string_view s) {
    std::vector<std::byte> b(s.size());
    std::memcpy(b.data(), s.data(), s.size());
    return fromBytes(std::move(b));
  }

  /// Size-only payload; `tag` identifies the logical content for cheap
  /// equality checks in benchmarks.
  static Payload synthetic(std::uint64_t size, std::uint64_t tag = 0) {
    Payload p;
    p.size_ = size;
    p.tag_ = tag;
    return p;
  }

  std::uint64_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  bool hasBytes() const noexcept { return data_ != nullptr; }
  std::uint64_t tag() const noexcept { return tag_; }

  std::span<const std::byte> bytes() const noexcept {
    if (!data_) return {};
    return std::span<const std::byte>(data_->data() + off_, len_);
  }

  std::string toString() const {
    auto b = bytes();
    return std::string(reinterpret_cast<const char*>(b.data()), b.size());
  }

  /// Zero-copy sub-range view. Synthetic payloads stay synthetic (the tag is
  /// preserved, which is fine: slices of synthetic data are never verified).
  Payload slice(std::uint64_t off, std::uint64_t len) const {
    Payload p;
    if (off > size_) off = size_;
    if (len > size_ - off) len = size_ - off;
    p.size_ = len;
    p.tag_ = tag_;
    if (data_) {
      p.data_ = data_;
      p.off_ = off_ + off;
      p.len_ = len;
    }
    return p;
  }

  /// Drops the bytes, keeping size and tag (used when a pool is configured
  /// not to retain data).
  Payload stripBytes() const {
    Payload p = synthetic(size_, tag_);
    return p;
  }

  friend bool operator==(const Payload& a, const Payload& b) {
    if (a.size_ != b.size_) return false;
    if (a.hasBytes() && b.hasBytes()) {
      auto sa = a.bytes();
      auto sb = b.bytes();
      return std::equal(sa.begin(), sa.end(), sb.begin());
    }
    return a.tag_ == b.tag_;
  }

 private:
  std::uint64_t size_ = 0;
  std::uint64_t tag_ = 0;
  std::shared_ptr<const std::vector<std::byte>> data_;
  std::size_t off_ = 0;
  std::size_t len_ = 0;
};

/// Helper: a payload filled with a deterministic byte pattern derived from
/// `seed` (used by tests and examples to generate verifiable data).
Payload patternPayload(std::uint64_t size, std::uint64_t seed);

/// XOR of payloads, zero-padded to `length`. Real iff every input carries
/// bytes (used for erasure-code parity and reconstruction).
Payload xorPayloads(const std::vector<Payload>& parts, std::uint64_t length);

}  // namespace daosim::vos
