#include "vos/payload.h"

#include "sim/rng.h"

namespace daosim::vos {

Payload patternPayload(std::uint64_t size, std::uint64_t seed) {
  std::vector<std::byte> data(size);
  std::uint64_t x = seed;
  std::size_t i = 0;
  while (i + 8 <= data.size()) {
    x = sim::mix64(x);
    std::memcpy(data.data() + i, &x, 8);
    i += 8;
  }
  if (i < data.size()) {
    x = sim::mix64(x);
    std::memcpy(data.data() + i, &x, data.size() - i);
  }
  return Payload::fromBytes(std::move(data));
}

Payload xorPayloads(const std::vector<Payload>& parts,
                    std::uint64_t length) {
  bool all_real = !parts.empty();
  for (const auto& p : parts) {
    if (!p.hasBytes()) all_real = false;
  }
  if (!all_real) return Payload::synthetic(length);
  std::vector<std::byte> out(length);  // zeroed
  for (const auto& p : parts) {
    auto b = p.bytes();
    for (std::size_t i = 0; i < b.size() && i < out.size(); ++i) {
      out[i] ^= b[i];
    }
  }
  return Payload::fromBytes(std::move(out));
}

}  // namespace daosim::vos
