// Per-target versioned object store (the VOS analogue).
//
// One TargetStore exists per DAOS target (and is reused for Lustre OSTs and
// Ceph OSDs, which store their objects through the same structures). The
// data model mirrors VOS: container -> object -> dkey -> akey -> value,
// where a value is either a single atomic payload (KV records) or an extent
// tree (array records).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <variant>
#include <vector>

#include "placement/oid.h"
#include "vos/extent_tree.h"
#include "vos/payload.h"

namespace daosim::vos {

using ContId = std::uint64_t;
using placement::ObjectId;

/// Serializes a 64-bit chunk/record index as a dkey (fixed 8-byte key).
std::string u64Dkey(std::uint64_t v);
std::uint64_t dkeyU64(std::string_view dkey);

class TargetStore {
 public:
  /// `retain_data=false` strips real bytes from *extent* (bulk data)
  /// payloads on ingest — benchmark mode: paper-scale runs would otherwise
  /// materialize terabytes. Single-value (KV) records always keep their
  /// bytes: they are metadata (directory entries, array attributes, dataset
  /// catalogs) that the layers above must be able to read back.
  explicit TargetStore(bool retain_data = true)
      : retain_data_(retain_data) {}

  // --- single-value (KV) records -------------------------------------
  void valuePut(ContId c, const ObjectId& o, std::string_view dkey,
                std::string_view akey, Payload value);
  /// Null if absent.
  const Payload* valueGet(ContId c, const ObjectId& o, std::string_view dkey,
                          std::string_view akey) const;
  bool valueRemove(ContId c, const ObjectId& o, std::string_view dkey,
                   std::string_view akey);

  // --- extent (array) records -----------------------------------------
  void extentWrite(ContId c, const ObjectId& o, std::string_view dkey,
                   std::string_view akey, std::uint64_t offset,
                   Payload payload);
  ExtentTree::ReadResult extentRead(ContId c, const ObjectId& o,
                                    std::string_view dkey,
                                    std::string_view akey,
                                    std::uint64_t offset,
                                    std::uint64_t length) const;
  /// End offset of the extent tree (0 if absent).
  std::uint64_t extentEnd(ContId c, const ObjectId& o, std::string_view dkey,
                          std::string_view akey) const;
  void extentTruncate(ContId c, const ObjectId& o, std::string_view dkey,
                      std::string_view akey, std::uint64_t size);

  // --- enumeration and life-cycle --------------------------------------
  std::vector<std::string> listDkeys(ContId c, const ObjectId& o) const;
  std::vector<std::string> listAkeys(ContId c, const ObjectId& o,
                                     std::string_view dkey) const;
  bool objectExists(ContId c, const ObjectId& o) const;
  /// Removes the object and all records beneath it (DAOS punch).
  bool punchObject(ContId c, const ObjectId& o);
  bool punchDkey(ContId c, const ObjectId& o, std::string_view dkey);
  void destroyContainer(ContId c);

  // --- enumeration for migration/rebuild --------------------------------
  /// Every (container, object) pair held by this target.
  std::vector<std::pair<ContId, ObjectId>> listObjects() const;

  /// A view of one record for copy-out.
  struct RecordView {
    const std::string* dkey;
    const std::string* akey;
    const Payload* value;     // non-null for single-value records
    const ExtentTree* tree;   // non-null for extent records
  };
  /// Invokes `fn(RecordView)` for every record of the object.
  template <typename Fn>
  void forEachRecord(ContId c, const ObjectId& o, Fn&& fn) const {
    const ObjectShard* obj = findObject(c, o);
    if (obj == nullptr) return;
    for (const auto& [dkey, entry] : obj->dkeys) {
      for (const auto& [akey, value] : entry.akeys) {
        RecordView view{&dkey, &akey, std::get_if<Payload>(&value),
                        std::get_if<ExtentTree>(&value)};
        fn(view);
      }
    }
  }

  // --- accounting -------------------------------------------------------
  std::uint64_t bytesStored() const noexcept { return bytes_stored_; }
  std::uint64_t objectCount() const noexcept;
  std::uint64_t containerCount() const noexcept { return containers_.size(); }

  // Cumulative record-op counts (telemetry rate probes: per-target VOS
  // op/s). Reads count even when they miss — the lookup work happens either
  // way.
  std::uint64_t valuePuts() const noexcept { return value_puts_; }
  std::uint64_t valueGets() const noexcept { return value_gets_; }
  std::uint64_t extentWrites() const noexcept { return extent_writes_; }
  std::uint64_t extentReads() const noexcept { return extent_reads_; }
  std::uint64_t recordOps() const noexcept {
    return value_puts_ + value_gets_ + extent_writes_ + extent_reads_;
  }

 private:
  using Value = std::variant<Payload, ExtentTree>;
  struct DkeyEntry {
    std::map<std::string, Value, std::less<>> akeys;
  };
  struct ObjectShard {
    std::map<std::string, DkeyEntry, std::less<>> dkeys;
  };
  struct ContainerShard {
    std::unordered_map<ObjectId, ObjectShard> objects;
  };

  Payload ingest(Payload p) const {
    return (!retain_data_ && p.hasBytes()) ? p.stripBytes() : std::move(p);
  }

  ObjectShard& objectShard(ContId c, const ObjectId& o);
  const ObjectShard* findObject(ContId c, const ObjectId& o) const;

  std::uint64_t valueBytes(const Value& v) const;

  bool retain_data_;
  std::unordered_map<ContId, ContainerShard> containers_;
  std::uint64_t bytes_stored_ = 0;
  std::uint64_t value_puts_ = 0;
  mutable std::uint64_t value_gets_ = 0;  // bumped in const getters
  std::uint64_t extent_writes_ = 0;
  mutable std::uint64_t extent_reads_ = 0;
};

}  // namespace daosim::vos
