#include "vos/target_store.h"

#include <cstring>

namespace daosim::vos {

std::string u64Dkey(std::uint64_t v) {
  std::string s(8, '\0');
  for (int i = 7; i >= 0; --i) {  // big-endian so keys sort numerically
    s[static_cast<std::size_t>(i)] = static_cast<char>(v & 0xff);
    v >>= 8;
  }
  return s;
}

std::uint64_t dkeyU64(std::string_view dkey) {
  std::uint64_t v = 0;
  for (char c : dkey.substr(0, 8)) {
    v = (v << 8) | static_cast<unsigned char>(c);
  }
  return v;
}

TargetStore::ObjectShard& TargetStore::objectShard(ContId c,
                                                   const ObjectId& o) {
  return containers_[c].objects[o];
}

const TargetStore::ObjectShard* TargetStore::findObject(
    ContId c, const ObjectId& o) const {
  auto cit = containers_.find(c);
  if (cit == containers_.end()) return nullptr;
  auto oit = cit->second.objects.find(o);
  if (oit == cit->second.objects.end()) return nullptr;
  return &oit->second;
}

std::uint64_t TargetStore::valueBytes(const Value& v) const {
  if (const auto* p = std::get_if<Payload>(&v)) return p->size();
  return std::get<ExtentTree>(v).bytesStored();
}

void TargetStore::valuePut(ContId c, const ObjectId& o, std::string_view dkey,
                           std::string_view akey, Payload value) {
  ++value_puts_;
  auto& entry = objectShard(c, o).dkeys[std::string(dkey)];
  auto [it, inserted] = entry.akeys.try_emplace(std::string(akey));
  if (!inserted) bytes_stored_ -= valueBytes(it->second);
  it->second = std::move(value);  // KV records always retain bytes
  bytes_stored_ += valueBytes(it->second);
}

const Payload* TargetStore::valueGet(ContId c, const ObjectId& o,
                                     std::string_view dkey,
                                     std::string_view akey) const {
  ++value_gets_;
  const auto* obj = findObject(c, o);
  if (!obj) return nullptr;
  auto dit = obj->dkeys.find(dkey);
  if (dit == obj->dkeys.end()) return nullptr;
  auto ait = dit->second.akeys.find(akey);
  if (ait == dit->second.akeys.end()) return nullptr;
  return std::get_if<Payload>(&ait->second);
}

bool TargetStore::valueRemove(ContId c, const ObjectId& o,
                              std::string_view dkey, std::string_view akey) {
  auto cit = containers_.find(c);
  if (cit == containers_.end()) return false;
  auto oit = cit->second.objects.find(o);
  if (oit == cit->second.objects.end()) return false;
  auto dit = oit->second.dkeys.find(dkey);
  if (dit == oit->second.dkeys.end()) return false;
  auto ait = dit->second.akeys.find(akey);
  if (ait == dit->second.akeys.end()) return false;
  bytes_stored_ -= valueBytes(ait->second);
  dit->second.akeys.erase(ait);
  if (dit->second.akeys.empty()) oit->second.dkeys.erase(dit);
  return true;
}

void TargetStore::extentWrite(ContId c, const ObjectId& o,
                              std::string_view dkey, std::string_view akey,
                              std::uint64_t offset, Payload payload) {
  ++extent_writes_;
  auto& entry = objectShard(c, o).dkeys[std::string(dkey)];
  auto [it, inserted] = entry.akeys.try_emplace(std::string(akey));
  if (inserted || !std::holds_alternative<ExtentTree>(it->second)) {
    if (!inserted) bytes_stored_ -= valueBytes(it->second);
    it->second = ExtentTree{};
  }
  auto& tree = std::get<ExtentTree>(it->second);
  bytes_stored_ -= tree.bytesStored();
  tree.write(offset, ingest(std::move(payload)));
  bytes_stored_ += tree.bytesStored();
}

ExtentTree::ReadResult TargetStore::extentRead(ContId c, const ObjectId& o,
                                               std::string_view dkey,
                                               std::string_view akey,
                                               std::uint64_t offset,
                                               std::uint64_t length) const {
  ++extent_reads_;
  const auto* obj = findObject(c, o);
  if (obj) {
    auto dit = obj->dkeys.find(dkey);
    if (dit != obj->dkeys.end()) {
      auto ait = dit->second.akeys.find(akey);
      if (ait != dit->second.akeys.end()) {
        if (const auto* tree = std::get_if<ExtentTree>(&ait->second)) {
          return tree->read(offset, length);
        }
      }
    }
  }
  ExtentTree::ReadResult hole;
  hole.data = Payload::synthetic(length);
  hole.bytes_found = 0;
  return hole;
}

std::uint64_t TargetStore::extentEnd(ContId c, const ObjectId& o,
                                     std::string_view dkey,
                                     std::string_view akey) const {
  const auto* obj = findObject(c, o);
  if (!obj) return 0;
  auto dit = obj->dkeys.find(dkey);
  if (dit == obj->dkeys.end()) return 0;
  auto ait = dit->second.akeys.find(akey);
  if (ait == dit->second.akeys.end()) return 0;
  if (const auto* tree = std::get_if<ExtentTree>(&ait->second)) {
    return tree->end();
  }
  return 0;
}

void TargetStore::extentTruncate(ContId c, const ObjectId& o,
                                 std::string_view dkey, std::string_view akey,
                                 std::uint64_t size) {
  auto& entry = objectShard(c, o).dkeys[std::string(dkey)];
  auto [it, inserted] = entry.akeys.try_emplace(std::string(akey));
  if (inserted || !std::holds_alternative<ExtentTree>(it->second)) {
    if (!inserted) bytes_stored_ -= valueBytes(it->second);
    it->second = ExtentTree{};
  }
  auto& tree = std::get<ExtentTree>(it->second);
  bytes_stored_ -= tree.bytesStored();
  tree.truncate(size);
  bytes_stored_ += tree.bytesStored();
}

std::vector<std::string> TargetStore::listDkeys(ContId c,
                                                const ObjectId& o) const {
  std::vector<std::string> out;
  if (const auto* obj = findObject(c, o)) {
    out.reserve(obj->dkeys.size());
    for (const auto& [k, _] : obj->dkeys) out.push_back(k);
  }
  return out;
}

std::vector<std::string> TargetStore::listAkeys(ContId c, const ObjectId& o,
                                                std::string_view dkey) const {
  std::vector<std::string> out;
  if (const auto* obj = findObject(c, o)) {
    auto dit = obj->dkeys.find(dkey);
    if (dit != obj->dkeys.end()) {
      out.reserve(dit->second.akeys.size());
      for (const auto& [k, _] : dit->second.akeys) out.push_back(k);
    }
  }
  return out;
}

bool TargetStore::objectExists(ContId c, const ObjectId& o) const {
  return findObject(c, o) != nullptr;
}

bool TargetStore::punchObject(ContId c, const ObjectId& o) {
  auto cit = containers_.find(c);
  if (cit == containers_.end()) return false;
  auto oit = cit->second.objects.find(o);
  if (oit == cit->second.objects.end()) return false;
  for (const auto& [_, d] : oit->second.dkeys) {
    for (const auto& [_a, v] : d.akeys) bytes_stored_ -= valueBytes(v);
  }
  cit->second.objects.erase(oit);
  return true;
}

bool TargetStore::punchDkey(ContId c, const ObjectId& o,
                            std::string_view dkey) {
  auto cit = containers_.find(c);
  if (cit == containers_.end()) return false;
  auto oit = cit->second.objects.find(o);
  if (oit == cit->second.objects.end()) return false;
  auto dit = oit->second.dkeys.find(dkey);
  if (dit == oit->second.dkeys.end()) return false;
  for (const auto& [_a, v] : dit->second.akeys) bytes_stored_ -= valueBytes(v);
  oit->second.dkeys.erase(dit);
  return true;
}

void TargetStore::destroyContainer(ContId c) {
  auto cit = containers_.find(c);
  if (cit == containers_.end()) return;
  for (const auto& [_, obj] : cit->second.objects) {
    for (const auto& [_d, d] : obj.dkeys) {
      for (const auto& [_a, v] : d.akeys) bytes_stored_ -= valueBytes(v);
    }
  }
  containers_.erase(cit);
}

std::vector<std::pair<ContId, ObjectId>> TargetStore::listObjects() const {
  std::vector<std::pair<ContId, ObjectId>> out;
  for (const auto& [cid, cont] : containers_) {
    for (const auto& [oid, _] : cont.objects) out.emplace_back(cid, oid);
  }
  return out;
}

std::uint64_t TargetStore::objectCount() const noexcept {
  std::uint64_t n = 0;
  for (const auto& [_, c] : containers_) n += c.objects.size();
  return n;
}

}  // namespace daosim::vos
