// Byte-granular extent index for array values (the VOS "evtree" analogue).
//
// Stores non-overlapping extents keyed by start offset. Writes split and
// trim older extents they overlap (last-writer-wins, as in VOS where newer
// epochs shadow older ones). Reads assemble bytes across extents; gaps read
// as zeros, matching DAOS array hole semantics.
#pragma once

#include <cstdint>
#include <map>

#include "vos/payload.h"

namespace daosim::vos {

class ExtentTree {
 public:
  struct ReadResult {
    Payload data;                ///< assembled payload of the requested length
    std::uint64_t bytes_found = 0;  ///< bytes actually backed by extents
  };

  void write(std::uint64_t offset, Payload payload);

  /// Reads [offset, offset+length). If every byte in range is backed by
  /// real-bytes extents (or is a hole), `data` is a real payload with holes
  /// zero-filled; otherwise it is synthetic of the requested length.
  ReadResult read(std::uint64_t offset, std::uint64_t length) const;

  /// One past the last stored byte (the array "size" VOS reports).
  std::uint64_t end() const noexcept { return end_; }

  /// Sets the logical size to exactly `size` (ftruncate / set_size
  /// semantics): extents beyond are removed, shrinking or extending end().
  void truncate(std::uint64_t size);

  std::uint64_t extentCount() const noexcept { return extents_.size(); }
  /// Raw extent map (offset -> payload), for migration/rebuild.
  const std::map<std::uint64_t, Payload>& extents() const noexcept {
    return extents_;
  }
  std::uint64_t bytesStored() const noexcept { return stored_; }
  bool empty() const noexcept { return extents_.empty(); }

 private:
  // Removes/trims extents overlapping [off, off+len); keeps accounting.
  void carve(std::uint64_t off, std::uint64_t len);

  std::map<std::uint64_t, Payload> extents_;
  std::uint64_t end_ = 0;
  std::uint64_t stored_ = 0;
};

}  // namespace daosim::vos
