#include "vos/extent_tree.h"

#include <cstring>
#include <vector>

namespace daosim::vos {

void ExtentTree::carve(std::uint64_t off, std::uint64_t len) {
  if (len == 0) return;
  const std::uint64_t hi = off + len;

  // Predecessor extent overlapping the range start: split it.
  auto it = extents_.upper_bound(off);
  if (it != extents_.begin()) {
    auto prev = std::prev(it);
    const std::uint64_t p_start = prev->first;
    const std::uint64_t p_end = p_start + prev->second.size();
    if (p_end > off) {
      Payload whole = prev->second;
      stored_ -= whole.size();
      extents_.erase(prev);
      if (p_start < off) {
        Payload left = whole.slice(0, off - p_start);
        stored_ += left.size();
        extents_.emplace(p_start, std::move(left));
      }
      if (p_end > hi) {
        Payload right = whole.slice(hi - p_start, p_end - hi);
        stored_ += right.size();
        extents_.emplace(hi, std::move(right));
      }
    }
  }

  // Extents starting inside the range: erase; trim the one crossing `hi`.
  it = extents_.lower_bound(off);
  while (it != extents_.end() && it->first < hi) {
    const std::uint64_t e_start = it->first;
    const std::uint64_t e_end = e_start + it->second.size();
    Payload whole = it->second;
    stored_ -= whole.size();
    it = extents_.erase(it);
    if (e_end > hi) {
      Payload right = whole.slice(hi - e_start, e_end - hi);
      stored_ += right.size();
      extents_.emplace(hi, std::move(right));
      break;
    }
  }
}

void ExtentTree::write(std::uint64_t offset, Payload payload) {
  if (payload.empty()) return;
  carve(offset, payload.size());
  end_ = std::max(end_, offset + payload.size());
  stored_ += payload.size();
  extents_.emplace(offset, std::move(payload));
}

ExtentTree::ReadResult ExtentTree::read(std::uint64_t offset,
                                        std::uint64_t length) const {
  ReadResult r;
  if (length == 0) return r;

  // First pass: find overlapping extents and whether all carry real bytes.
  bool all_real = true;
  std::uint64_t found = 0;
  const std::uint64_t hi = offset + length;

  auto first = extents_.upper_bound(offset);
  if (first != extents_.begin()) {
    auto prev = std::prev(first);
    if (prev->first + prev->second.size() > offset) first = prev;
  }
  for (auto it = first; it != extents_.end() && it->first < hi; ++it) {
    const std::uint64_t lo = std::max(offset, it->first);
    const std::uint64_t e_hi = std::min(hi, it->first + it->second.size());
    found += e_hi - lo;
    if (!it->second.hasBytes()) all_real = false;
  }
  r.bytes_found = found;

  if (!all_real) {
    r.data = Payload::synthetic(length);
    return r;
  }

  // Assemble real bytes, zero-filling holes.
  std::vector<std::byte> out(length);  // zero-initialized
  for (auto it = first; it != extents_.end() && it->first < hi; ++it) {
    const std::uint64_t lo = std::max(offset, it->first);
    const std::uint64_t e_hi = std::min(hi, it->first + it->second.size());
    auto piece = it->second.slice(lo - it->first, e_hi - lo).bytes();
    std::memcpy(out.data() + (lo - offset), piece.data(), piece.size());
  }
  r.data = Payload::fromBytes(std::move(out));
  return r;
}

void ExtentTree::truncate(std::uint64_t size) {
  if (size < end_) carve(size, end_ - size);
  // Explicit-size semantics (POSIX ftruncate / daos_array_set_size): the
  // logical size becomes exactly `size`, shrinking or extending with a hole.
  end_ = size;
}

}  // namespace daosim::vos
